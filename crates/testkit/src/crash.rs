//! Crash-recovery differential mode.
//!
//! The single-threaded driver ([`replay_crash_ops`]) runs a generated
//! workload through `Durable<BpTree>` on a [`MemStorage`] whose crash
//! model is an arbitrary byte prefix of the global append order (never
//! less than what fsync promised). It mirrors every logged mutation into a
//! shadow log, then "crashes" at a set of byte cuts, recovers each crash
//! image, and asserts **prefix consistency**: the recovered tree must
//! exactly equal the model replayed to the recovered LSN, the recovered
//! LSN must cover the last explicit durability point (fsync promises
//! survive any cut), and the full, un-torn image must recover *every*
//! logged record — the check that catches framing bugs like the
//! `inject-wal-bug` mutation.
//!
//! The concurrent driver ([`replay_crash_concurrent`]) puts N writers
//! through `Durable<ConcurrentTree>` group commit, captures a live crash
//! image mid-run (after recording each writer's acked floor), and asserts
//! per-writer prefix consistency: every recovered partition is a
//! contiguous prefix of that writer's insertion order, at least as long as
//! its acked floor, with exact value tags.
//!
//! The contended driver ([`replay_crash_contended`]) is the complement:
//! writers race inserts and deletes over one *shared* key set, and the
//! oracle is that replaying the complete WAL reconstructs exactly the
//! live tree — the direct check that the wrapper logs conflicting ops in
//! the order it applies them (partition-based checks can never see this).

use crate::oracle::{Divergence, Model};
use crate::si_checker::{TxnOp, MAX_SLOTS};
use crate::workload::Op;
use quit_concurrent::ConcConfig;
use quit_core::{Error, FastPathMode, SortedIndex, StorageKind, TreeConfig};
use quit_durability::{
    bptree_builder, concurrent_builder, DurabilityConfig, Durable, MemStorage, Storage, TxnConfig,
    TxnStore,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Deterministic stream for crash-point and commit-point selection
/// (splitmix64; the workload itself has its own seeded generator).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One logged mutation in the shadow log (the model-side mirror of the
/// WAL record stream, in LSN order).
#[derive(Clone, Copy)]
enum Logged {
    Insert(u64, u64),
    Delete(u64),
}

/// Knobs for one crash-recovery differential run.
#[derive(Clone, Debug)]
pub struct CrashSpec {
    /// Random crash points per run (cuts at 0 and at the full image are
    /// always tested in addition).
    pub cuts: usize,
    /// Leaf capacity of the durable tree (small forces splits).
    pub leaf_capacity: usize,
    /// An explicit `commit_all` durability point fires at roughly one in
    /// this many ops (0 disables them; the final-image check still runs).
    pub commit_every: usize,
    /// Checkpoint (sorted snapshot + WAL rotation) after this op index,
    /// exercising `bulk_load(snapshot) + replay(tail)` recovery.
    pub checkpoint_at: Option<usize>,
    /// Seed for crash-point/commit-point selection.
    pub seed: u64,
}

impl Default for CrashSpec {
    fn default() -> Self {
        CrashSpec {
            cuts: 16,
            leaf_capacity: 8,
            commit_every: 48,
            checkpoint_at: None,
            seed: 0xC4A5_4000,
        }
    }
}

/// Totals from a completed (divergence-free) crash fuzz.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashReport {
    /// Workload ops driven through the durable tree.
    pub ops: usize,
    /// Mutation records written to the WAL (the shadow-log length).
    pub records: usize,
    /// Crash points recovered and verified (including 0 and full).
    pub cuts_tested: usize,
    /// Crash points whose image ended in a torn frame.
    pub torn_cuts: usize,
    /// LSN covered by the last explicit durability point.
    pub floor_lsn: u64,
    /// Smallest / largest LSN any crash point recovered to.
    pub min_recovered: u64,
    /// See [`min_recovered`](Self::min_recovered).
    pub max_recovered: u64,
}

fn io_div(stage: &'static str, e: quit_core::Error) -> Divergence {
    Divergence {
        family: "Durable<BpTree>",
        op_index: usize::MAX,
        detail: format!("{stage}: {} error: {e}", e.kind()),
    }
}

fn crash_config() -> DurabilityConfig {
    // Tiny buffer and segments: flushes and rotations every few records,
    // so crash points land in every structurally interesting place.
    DurabilityConfig::buffered()
        .with_wal_buffer_bytes(256)
        .with_segment_bytes(4 << 10)
        .with_snapshot_chunk(64)
}

/// Runs `ops` through `Durable<BpTree>`, then crash-fuzzes the resulting
/// storage image at `spec.cuts` random byte cuts (plus the empty and full
/// images). Returns the first prefix-consistency violation as a
/// [`Divergence`], which makes this directly shrinkable by proptest.
pub fn replay_crash_ops(ops: &[Op], spec: &CrashSpec) -> Result<CrashReport, Divergence> {
    let storage = Arc::new(MemStorage::new());
    let tree_config = TreeConfig::small(spec.leaf_capacity);
    let (mut durable, _) = Durable::open(
        storage.clone() as Arc<dyn Storage>,
        crash_config(),
        bptree_builder::<u64, u64>(FastPathMode::Pole, tree_config.clone()),
    )
    .map_err(|e| io_div("open", e))?;

    let mut shadow: Vec<Logged> = Vec::new();
    let mut rng = spec.seed ^ 0xD15C_0000;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                durable.insert(*k, *v);
                shadow.push(Logged::Insert(*k, *v));
            }
            Op::InsertBatch(entries) | Op::BulkLoad(entries) => {
                durable.insert_batch(entries);
                shadow.extend(entries.iter().map(|&(k, v)| Logged::Insert(k, v)));
            }
            Op::Delete(k) => {
                // The wrapper logs every delete, hit or miss.
                durable.delete(*k);
                shadow.push(Logged::Delete(*k));
            }
            Op::Get(k) => {
                let _ = durable.get(*k);
            }
            Op::Range(s, e) => {
                let _ = SortedIndex::range(&mut durable, *s..*e).count();
            }
            Op::ResetMetrics => SortedIndex::<u64, u64>::reset_metrics(&durable),
        }
        if spec.checkpoint_at == Some(i) {
            durable
                .checkpoint::<u64, u64>()
                .map_err(|e| io_div("checkpoint", e))?;
        }
        if spec.commit_every > 0 && splitmix(&mut rng).is_multiple_of(spec.commit_every as u64) {
            durable.commit_all().map_err(|e| io_div("commit_all", e))?;
        }
    }
    // Push everything still buffered to storage *without* an fsync: the
    // full image must then recover every logged record, while arbitrary
    // cuts may still tear mid-frame.
    durable.flush().map_err(|e| io_div("flush", e))?;
    let floor_lsn = durable.wal().durable_lsn();
    drop(durable);

    let total = storage.total_appended();
    let mut report = CrashReport {
        ops: ops.len(),
        records: shadow.len(),
        floor_lsn,
        min_recovered: u64::MAX,
        ..CrashReport::default()
    };

    // Rotation fsyncs every completed segment, so only the suffix past the
    // durable watermark can tear; half the cuts are biased into it (a
    // uniform draw over megabytes of fsynced history would almost never
    // land there).
    let durable = storage.durable_bytes();
    let mut cuts: Vec<usize> = vec![0, total];
    for i in 0..spec.cuts {
        let cut = if i % 2 == 0 {
            (splitmix(&mut rng) % (total as u64 + 1)) as usize
        } else {
            durable + (splitmix(&mut rng) % ((total - durable) as u64 + 1)) as usize
        };
        cuts.push(cut);
    }
    for &cut in &cuts {
        verify_cut(&storage, cut, total, &shadow, floor_lsn, spec, &mut report)?;
    }
    Ok(report)
}

/// Recovers the crash image at byte `cut` and asserts prefix consistency.
fn verify_cut(
    storage: &MemStorage,
    cut: usize,
    total: usize,
    shadow: &[Logged],
    floor_lsn: u64,
    spec: &CrashSpec,
    report: &mut CrashReport,
) -> Result<(), Divergence> {
    let diverge = |detail: String| Divergence {
        family: "Durable<BpTree>",
        op_index: cut,
        detail,
    };
    let crashed = Arc::new(storage.crash(cut));
    let (mut recovered, rec) = Durable::open(
        crashed as Arc<dyn Storage>,
        crash_config(),
        bptree_builder::<u64, u64>(FastPathMode::Pole, TreeConfig::small(spec.leaf_capacity)),
    )
    .map_err(|e| io_div("recover", e))?;

    let r = rec.recovered_lsn;
    if r < floor_lsn {
        return Err(diverge(format!(
            "durability violation: recovered LSN {r} < fsync floor {floor_lsn}"
        )));
    }
    if r as usize > shadow.len() {
        return Err(diverge(format!(
            "recovered LSN {r} beyond the {} records ever logged",
            shadow.len()
        )));
    }
    if cut == total {
        if r as usize != shadow.len() {
            return Err(diverge(format!(
                "full image must recover all {} records, got LSN {r} (torn={})",
                shadow.len(),
                rec.torn_tail,
            )));
        }
        if rec.torn_tail {
            return Err(diverge("full image reported a torn tail".to_string()));
        }
    }

    check_prefix_equality(&mut recovered, shadow, r, &diverge)?;

    report.cuts_tested += 1;
    report.torn_cuts += rec.torn_tail as usize;
    report.min_recovered = report.min_recovered.min(r);
    report.max_recovered = report.max_recovered.max(r);
    Ok(())
}

/// Replays the shadow log to LSN `r` and demands exact equality with the
/// recovered tree: length, the full key sequence (multiplicity included),
/// values wherever a single untainted instance makes them well-defined,
/// and the structural invariant suite.
fn check_prefix_equality(
    recovered: &mut Durable<quit_core::BpTree<u64, u64>>,
    shadow: &[Logged],
    r: u64,
    diverge: &dyn Fn(String) -> Divergence,
) -> Result<(), Divergence> {
    let mut model = Model::default();
    for logged in &shadow[..r as usize] {
        match *logged {
            Logged::Insert(k, v) => model.insert(k, v),
            Logged::Delete(k) => {
                model.delete(k);
            }
        }
    }
    if recovered.len() != model.len {
        return Err(diverge(format!(
            "recovered len {} vs model {} at LSN {r}",
            recovered.len(),
            model.len
        )));
    }
    let want: Vec<u64> = model.range_keys(0, u64::MAX);
    let got: Vec<u64> = SortedIndex::range(recovered, ..).map(|(k, _)| k).collect();
    if got != want {
        let at = got.iter().zip(&want).position(|(a, b)| a != b);
        return Err(diverge(format!(
            "recovered keys diverge at LSN {r}: {} keys vs model {} (first mismatch {at:?})",
            got.len(),
            want.len()
        )));
    }
    for (k, values) in &model.map {
        if values.len() == 1 && !model.tainted.contains(k) {
            let have = recovered.get(*k);
            if have != Some(values[0]) {
                return Err(diverge(format!(
                    "recovered value for key {k}: {have:?} vs model {} at LSN {r}",
                    values[0]
                )));
            }
        }
    }
    recovered
        .inner()
        .check_invariants()
        .map_err(|e| diverge(format!("recovered tree invariants: {e}")))?;
    Ok(())
}

/// [`replay_crash_ops`] with the workload generated from `workload`
/// (convenience for fixed-seed soaks).
pub fn replay_crash(
    workload: &crate::workload::WorkloadSpec,
    spec: &CrashSpec,
) -> Result<CrashReport, Divergence> {
    replay_crash_ops(&workload.generate(), spec)
}

/// Knobs for the **paged** crash differential: the page-file variant of
/// [`CrashSpec`]. The durable tree runs the paged backend, checkpoints
/// publish the page file itself (`psnap-….qpsf`), and the crash fuzz cuts
/// the combined page-file + WAL byte stream — so cuts land inside psnap
/// writes (a torn, unpublished snapshot the recovery must ignore) as well
/// as inside WAL frames. Checkpoint pruning is disabled so that every
/// crash image retains a full fallback chain (older snapshots + unpruned
/// segments): recovery after *any* rejection must still reach the exact
/// committed prefix, never a partially applied page.
#[derive(Clone, Debug)]
pub struct PagedCrashSpec {
    /// Random crash points per run (0 and the full image always added).
    pub cuts: usize,
    /// Leaf capacity of the durable paged tree.
    pub leaf_capacity: usize,
    /// Buffer-pool budget in pages (small forces constant eviction).
    pub pool_pages: usize,
    /// Explicit `commit_all` durability point roughly every this many
    /// ops (0 disables).
    pub commit_every: usize,
    /// `checkpoint_paged` (page-file snapshot + WAL rotation) after this
    /// op index.
    pub checkpoint_at: Option<usize>,
    /// Torn-page trials: single-byte flips planted inside the *published*
    /// newest psnap of the full image; recovery must reject the snapshot
    /// (never silently apply the flipped page) and still recover the
    /// exact committed prefix through the fallback chain.
    pub torn_pages: usize,
    /// Seed for crash-point/flip selection.
    pub seed: u64,
}

impl Default for PagedCrashSpec {
    fn default() -> Self {
        PagedCrashSpec {
            cuts: 24,
            leaf_capacity: 8,
            pool_pages: 8,
            commit_every: 48,
            checkpoint_at: Some(40),
            torn_pages: 12,
            seed: 0x9A6E_C4A5,
        }
    }
}

/// Totals from a completed (divergence-free) paged crash fuzz.
#[derive(Clone, Copy, Debug, Default)]
pub struct PagedCrashReport {
    /// Workload ops driven through the durable paged tree.
    pub ops: usize,
    /// Mutation records written to the WAL (the shadow-log length).
    pub records: usize,
    /// Crash points recovered and verified (including 0 and full).
    pub cuts_tested: usize,
    /// Crash points whose WAL image ended in a torn frame.
    pub torn_cuts: usize,
    /// Recoveries that rejected at least one snapshot candidate (torn or
    /// truncated psnap/qsnp files) and fell back.
    pub rejected_recoveries: usize,
    /// Torn-page trials that planted a byte flip and verified rejection.
    pub torn_pages_tested: usize,
    /// LSN covered by the last explicit durability point.
    pub floor_lsn: u64,
    /// Smallest / largest LSN any crash point recovered to.
    pub min_recovered: u64,
    /// See [`min_recovered`](Self::min_recovered).
    pub max_recovered: u64,
}

fn paged_crash_tree_config(spec: &PagedCrashSpec) -> TreeConfig {
    TreeConfig::small(spec.leaf_capacity).with_storage(StorageKind::paged(spec.pool_pages))
}

fn open_paged_crashed(
    storage: Arc<MemStorage>,
    spec: &PagedCrashSpec,
) -> quit_core::Result<(
    Durable<quit_core::BpTree<u64, u64>>,
    quit_durability::RecoveryReport,
)> {
    Durable::open_paged(
        storage as Arc<dyn Storage>,
        crash_config().with_prune_on_checkpoint(false),
        FastPathMode::Pole,
        paged_crash_tree_config(spec),
    )
}

/// The page-file variant of [`replay_crash_ops`]: runs `ops` through a
/// durable **paged** tree (checkpointing the page file mid-run), then
/// crash-fuzzes the byte stream at `spec.cuts` offsets and plants
/// `spec.torn_pages` single-byte flips inside the published snapshot.
/// Every recovery must lazily fault to exactly the committed prefix; a
/// torn page must be rejected, never silently applied.
pub fn replay_crash_paged_ops(
    ops: &[Op],
    spec: &PagedCrashSpec,
) -> Result<PagedCrashReport, Divergence> {
    let storage = Arc::new(MemStorage::new());
    let (mut durable, _) =
        open_paged_crashed(storage.clone(), spec).map_err(|e| io_div("open", e))?;

    let mut shadow: Vec<Logged> = Vec::new();
    let mut rng = spec.seed ^ 0xD15C_0000;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                durable.insert(*k, *v);
                shadow.push(Logged::Insert(*k, *v));
            }
            Op::InsertBatch(entries) | Op::BulkLoad(entries) => {
                durable.insert_batch(entries);
                shadow.extend(entries.iter().map(|&(k, v)| Logged::Insert(k, v)));
            }
            Op::Delete(k) => {
                durable.delete(*k);
                shadow.push(Logged::Delete(*k));
            }
            Op::Get(k) => {
                let _ = durable.get(*k);
            }
            Op::Range(s, e) => {
                let _ = SortedIndex::range(&mut durable, *s..*e).count();
            }
            Op::ResetMetrics => SortedIndex::<u64, u64>::reset_metrics(&durable),
        }
        if spec.checkpoint_at == Some(i) {
            durable
                .checkpoint_paged()
                .map_err(|e| io_div("checkpoint_paged", e))?;
        }
        if spec.commit_every > 0 && splitmix(&mut rng).is_multiple_of(spec.commit_every as u64) {
            durable.commit_all().map_err(|e| io_div("commit_all", e))?;
        }
    }
    durable.flush().map_err(|e| io_div("flush", e))?;
    let floor_lsn = durable.wal().durable_lsn();
    drop(durable);

    let total = storage.total_appended();
    let mut report = PagedCrashReport {
        ops: ops.len(),
        records: shadow.len(),
        floor_lsn,
        min_recovered: u64::MAX,
        ..PagedCrashReport::default()
    };

    let durable_bytes = storage.durable_bytes();
    let mut cuts: Vec<usize> = vec![0, total];
    for i in 0..spec.cuts {
        let cut = if i % 2 == 0 {
            (splitmix(&mut rng) % (total as u64 + 1)) as usize
        } else {
            durable_bytes + (splitmix(&mut rng) % ((total - durable_bytes) as u64 + 1)) as usize
        };
        cuts.push(cut);
    }
    for &cut in &cuts {
        verify_paged_cut(&storage, cut, total, &shadow, floor_lsn, spec, &mut report)?;
    }

    // Torn-page trials: flip one byte inside the newest *published* psnap
    // of the full image. The per-page CRC sweep must reject the whole
    // candidate and recovery must fall back to the exact committed
    // prefix — a flipped page must never be served.
    for _ in 0..spec.torn_pages {
        verify_torn_page(&storage, total, &shadow, &mut rng, spec, &mut report)?;
    }
    Ok(report)
}

/// Recovers the paged crash image at byte `cut` and asserts lazy
/// prefix-consistent recovery.
fn verify_paged_cut(
    storage: &MemStorage,
    cut: usize,
    total: usize,
    shadow: &[Logged],
    floor_lsn: u64,
    spec: &PagedCrashSpec,
    report: &mut PagedCrashReport,
) -> Result<(), Divergence> {
    let diverge = |detail: String| Divergence {
        family: "Durable<BpTree[paged]>",
        op_index: cut,
        detail,
    };
    let crashed = Arc::new(storage.crash(cut));
    let (mut recovered, rec) =
        open_paged_crashed(crashed, spec).map_err(|e| io_div("recover", e))?;

    let r = rec.recovered_lsn;
    if r < floor_lsn {
        return Err(diverge(format!(
            "durability violation: recovered LSN {r} < fsync floor {floor_lsn}"
        )));
    }
    if r as usize > shadow.len() {
        return Err(diverge(format!(
            "recovered LSN {r} beyond the {} records ever logged",
            shadow.len()
        )));
    }
    if cut == total {
        if r as usize != shadow.len() {
            return Err(diverge(format!(
                "full image must recover all {} records, got LSN {r} (torn={})",
                shadow.len(),
                rec.torn_tail,
            )));
        }
        if rec.torn_tail {
            return Err(diverge("full image reported a torn tail".to_string()));
        }
        if rec.rejected_snapshots != 0 {
            return Err(diverge(format!(
                "full image rejected {} snapshot candidates",
                rec.rejected_snapshots
            )));
        }
    }

    // Lazy recovery: before any reads spread out, residency must stay
    // near the pool budget — the pool plus the last replayed op's pin set
    // (its spine and any split chain, trimmed at the next op boundary) —
    // never anywhere near the snapshot's full node count.
    let resident = recovered.inner().resident_nodes();
    let bound = spec.pool_pages + 2 * (recovered.inner().height() + 2);
    if rec.snapshot_entries > 0 && resident > bound {
        return Err(diverge(format!(
            "recovery faulted {resident} nodes (pool {} + pin-set bound {bound})",
            spec.pool_pages
        )));
    }

    check_prefix_equality(&mut recovered, shadow, r, &diverge)?;

    report.cuts_tested += 1;
    report.torn_cuts += rec.torn_tail as usize;
    report.rejected_recoveries += (rec.rejected_snapshots > 0) as usize;
    report.min_recovered = report.min_recovered.min(r);
    report.max_recovered = report.max_recovered.max(r);
    Ok(())
}

/// Plants a single-byte flip inside the newest published psnap of the
/// full image and asserts recovery rejects the snapshot yet still reaches
/// the exact committed prefix through the fallback chain.
fn verify_torn_page(
    storage: &MemStorage,
    total: usize,
    shadow: &[Logged],
    rng: &mut u64,
    spec: &PagedCrashSpec,
    report: &mut PagedCrashReport,
) -> Result<(), Divergence> {
    let crashed = storage.crash(total);
    let psnap = {
        let mut names: Vec<String> = crashed
            .list()
            .map_err(|e| io_div("list", Error::from(e)))?
            .into_iter()
            .filter(|n| n.starts_with("psnap-") && n.ends_with(".qpsf"))
            .collect();
        names.sort();
        match names.pop() {
            Some(name) => name,
            // No checkpoint in this run (e.g. a shrunk op list shorter
            // than `checkpoint_at`): nothing to tear.
            None => return Ok(()),
        }
    };
    let mut bytes = crashed
        .read(&psnap)
        .map_err(|e| io_div("read psnap", Error::from(e)))?;
    let at = (splitmix(rng) % bytes.len() as u64) as usize;
    let bit = 1u8 << (splitmix(rng) % 8);
    bytes[at] ^= bit;
    crashed
        .remove(&psnap)
        .map_err(|e| io_div("remove psnap", Error::from(e)))?;
    crashed.install(&psnap, bytes);

    let diverge = |detail: String| Divergence {
        family: "Durable<BpTree[paged]>",
        op_index: at,
        detail: format!("torn page (flip bit {bit:#04x} at byte {at} of {psnap}): {detail}"),
    };
    let (mut recovered, rec) =
        open_paged_crashed(Arc::new(crashed), spec).map_err(|e| io_div("recover torn", e))?;
    if rec.rejected_snapshots == 0 {
        return Err(diverge(
            "flipped snapshot was not rejected — a torn page may have been served".to_string(),
        ));
    }
    let r = rec.recovered_lsn;
    if r as usize != shadow.len() {
        return Err(diverge(format!(
            "fallback recovery reached LSN {r}, wanted all {} records",
            shadow.len()
        )));
    }
    check_prefix_equality(&mut recovered, shadow, r, &diverge)?;
    report.torn_pages_tested += 1;
    Ok(())
}

/// [`replay_crash_paged_ops`] with the workload generated from `workload`
/// (convenience for fixed-seed soaks).
pub fn replay_crash_paged(
    workload: &crate::workload::WorkloadSpec,
    spec: &PagedCrashSpec,
) -> Result<PagedCrashReport, Divergence> {
    replay_crash_paged_ops(&workload.generate(), spec)
}

/// Knobs for the concurrent crash differential: N writers through group
/// commit, a live mid-run crash image, per-writer prefix consistency.
#[derive(Clone, Debug)]
pub struct ConcCrashSpec {
    /// Writer threads (each owns the key partition `w << 32 ..`).
    pub writers: usize,
    /// Inserts per writer.
    pub ops_per_writer: usize,
    /// Leaf capacity for the concurrent tree.
    pub leaf_capacity: usize,
    /// Random crash cuts fuzzed over the captured mid-run image.
    pub cuts: usize,
    /// Seed for cut selection.
    pub seed: u64,
}

impl Default for ConcCrashSpec {
    fn default() -> Self {
        ConcCrashSpec {
            writers: 4,
            ops_per_writer: 400,
            leaf_capacity: 16,
            cuts: 12,
            seed: 0xC4A5_4C0C,
        }
    }
}

/// Totals from a divergence-free concurrent crash differential.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConcCrashReport {
    /// Total acked inserts across writers.
    pub writer_ops: usize,
    /// Sum of the per-writer acked floors at capture time.
    pub captured_floor: usize,
    /// Crash cuts recovered and verified over the mid-run image.
    pub cuts_tested: usize,
    /// Entries in the tree recovered from the final (post-delete) image.
    pub final_len: usize,
}

/// Runs N writers through `Durable<ConcurrentTree>` group commit,
/// captures a crash image mid-run, and asserts per-writer prefix
/// consistency at `spec.cuts` random cuts (plus the durable-only and full
/// images); then deletes a slice through the shared API, crashes at the
/// durable floor, and asserts the deletes survived recovery.
pub fn replay_crash_concurrent(spec: &ConcCrashSpec) -> Result<ConcCrashReport, Divergence> {
    let diverge = |detail: String| Divergence {
        family: "Durable<ConcurrentTree>",
        op_index: usize::MAX,
        detail,
    };
    let storage = Arc::new(MemStorage::new());
    let (durable, _) = Durable::open(
        storage.clone() as Arc<dyn Storage>,
        DurabilityConfig::group_commit().with_segment_bytes(16 << 10),
        concurrent_builder::<u64, u64>(ConcConfig::small(spec.leaf_capacity)),
    )
    .map_err(|e| io_div("open", e))?;
    let durable = Arc::new(durable);

    let acked: Vec<AtomicU64> = (0..spec.writers).map(|_| AtomicU64::new(0)).collect();
    let acked = Arc::new(acked);
    let half = (spec.writers * spec.ops_per_writer / 2) as u64;
    let mut captured: Option<(Vec<u64>, MemStorage)> = None;

    std::thread::scope(|scope| {
        for w in 0..spec.writers {
            let durable = durable.clone();
            let acked = acked.clone();
            scope.spawn(move || {
                let base = (w as u64) << 32;
                for i in 0..spec.ops_per_writer as u64 {
                    // Group commit: this returns only once the record's
                    // group fsync completed — the insert is *acked*.
                    durable.insert_shared(base + i, ((w as u64) << 48) | i);
                    acked[w].store(i + 1, Ordering::Release);
                }
            });
        }
        // Capture thread (the main thread): once half the target volume
        // is acked, record each writer's floor *first*, then snapshot the
        // storage. Every op acked before its floor read is durable in the
        // snapshot; later ops may or may not appear — exactly a crash.
        loop {
            let total: u64 = acked.iter().map(|a| a.load(Ordering::Acquire)).sum();
            if total >= half {
                let floors: Vec<u64> = acked.iter().map(|a| a.load(Ordering::Acquire)).collect();
                captured = Some((floors, storage.crash(usize::MAX)));
                break;
            }
            std::thread::yield_now();
        }
    });

    let (floors, base) = captured.expect("capture loop always runs");
    let mut report = ConcCrashReport {
        writer_ops: spec.writers * spec.ops_per_writer,
        captured_floor: floors.iter().sum::<u64>() as usize,
        ..ConcCrashReport::default()
    };

    // Fuzz cuts over the mid-run image: durable-only, full, random, and
    // (half of them) biased into the non-durable suffix where frames can
    // actually tear.
    let mut rng = spec.seed;
    let total = base.total_appended();
    let synced = base.durable_bytes();
    let mut cuts = vec![0, total];
    for i in 0..spec.cuts {
        let cut = if i % 2 == 0 {
            (splitmix(&mut rng) % (total as u64 + 1)) as usize
        } else {
            synced + (splitmix(&mut rng) % ((total - synced) as u64 + 1)) as usize
        };
        cuts.push(cut);
    }
    for &cut in &cuts {
        let crashed = Arc::new(base.crash(cut));
        let (recovered, _) = Durable::open(
            crashed as Arc<dyn Storage>,
            DurabilityConfig::group_commit(),
            concurrent_builder::<u64, u64>(ConcConfig::small(spec.leaf_capacity)),
        )
        .map_err(|e| io_div("recover", e))?;
        let mut per_writer: Vec<Vec<(u64, u64)>> = vec![Vec::new(); spec.writers];
        for (k, v) in recovered.tree().range(..) {
            let w = (k >> 32) as usize;
            if w >= spec.writers {
                return Err(diverge(format!("cut {cut}: alien key {k} recovered")));
            }
            per_writer[w].push((k & 0xFFFF_FFFF, v));
        }
        for (w, entries) in per_writer.iter().enumerate() {
            let n = entries.len() as u64;
            if n < floors[w] {
                return Err(diverge(format!(
                    "cut {cut}: writer {w} recovered {n} inserts, acked floor {}",
                    floors[w]
                )));
            }
            for (i, &(seq, v)) in entries.iter().enumerate() {
                let want = ((w as u64) << 48) | i as u64;
                if seq != i as u64 || v != want {
                    return Err(diverge(format!(
                        "cut {cut}: writer {w} not a contiguous prefix at #{i}: \
                         key seq {seq}, value {v:#x} (want {want:#x})"
                    )));
                }
            }
        }
        recovered
            .tree()
            .check_consistency()
            .map_err(|e| diverge(format!("cut {cut}: recovered consistency: {e}")))?;
        report.cuts_tested += 1;
    }

    // Deletes through the shared API, then the harshest legal crash: the
    // acked deletes must survive recovery.
    let victims: Vec<u64> = (0..spec.writers as u64)
        .flat_map(|w| (0..8.min(spec.ops_per_writer as u64)).map(move |i| (w << 32) + i))
        .collect();
    for &k in &victims {
        durable.delete_shared(k);
    }
    let expected_len = durable.tree().len();
    let crashed = Arc::new(storage.crash_durable_only());
    drop(durable);
    let (recovered, _) = Durable::open(
        crashed as Arc<dyn Storage>,
        DurabilityConfig::group_commit(),
        concurrent_builder::<u64, u64>(ConcConfig::small(spec.leaf_capacity)),
    )
    .map_err(|e| io_div("final recover", e))?;
    if recovered.tree().len() != expected_len {
        return Err(diverge(format!(
            "final image: recovered len {} vs live len {expected_len}",
            recovered.tree().len()
        )));
    }
    for &k in &victims {
        if recovered.tree().get(k).is_some() {
            return Err(diverge(format!("final image: deleted key {k} came back")));
        }
    }
    report.final_len = recovered.tree().len();
    Ok(report)
}

/// Knobs for the contended-key concurrent differential: N writers racing
/// inserts *and deletes over one small shared key set* through the shared
/// API — exactly the conflicting-key traffic the partitioned drivers
/// above never generate, and the traffic that exposes any gap between
/// WAL log order and tree apply order.
#[derive(Clone, Debug)]
pub struct ContendedSpec {
    /// Writer threads, all hammering the same keys.
    pub writers: usize,
    /// Ops per writer (~1 in 4 is a delete).
    pub ops_per_writer: usize,
    /// Size of the shared key space (small = constant conflicts).
    pub keys: u64,
    /// Leaf capacity for the concurrent tree.
    pub leaf_capacity: usize,
    /// Seed for each writer's op stream.
    pub seed: u64,
}

impl Default for ContendedSpec {
    fn default() -> Self {
        ContendedSpec {
            writers: 4,
            ops_per_writer: 600,
            keys: 24,
            leaf_capacity: 16,
            seed: 0xC0_47E4D,
        }
    }
}

/// Runs the contended workload and checks `Durable`'s ordering invariant
/// directly: once every writer has joined, **replaying the complete WAL
/// must reconstruct exactly the live tree**. If the wrapper ever logged
/// two conflicting ops in the opposite order to how they applied (e.g.
/// insert(k) at LSN n applied after delete(k) at LSN n+1), the replayed
/// state differs from the observed state on that key. Returns the final
/// entry count on success.
pub fn replay_crash_contended(spec: &ContendedSpec) -> Result<usize, Divergence> {
    let diverge = |detail: String| Divergence {
        family: "Durable<ConcurrentTree> (contended)",
        op_index: usize::MAX,
        detail,
    };
    let storage = Arc::new(MemStorage::new());
    let (durable, _) = Durable::open(
        storage.clone() as Arc<dyn Storage>,
        DurabilityConfig::group_commit().with_segment_bytes(16 << 10),
        concurrent_builder::<u64, u64>(ConcConfig::small(spec.leaf_capacity)),
    )
    .map_err(|e| io_div("open", e))?;
    let durable = Arc::new(durable);

    std::thread::scope(|scope| {
        for w in 0..spec.writers {
            let durable = durable.clone();
            let mut rng = spec.seed ^ ((w as u64 + 1) << 17);
            scope.spawn(move || {
                for i in 0..spec.ops_per_writer as u64 {
                    let r = splitmix(&mut rng);
                    let k = r % spec.keys;
                    if r >> 62 == 3 {
                        durable.delete_shared(k);
                    } else {
                        durable.insert_shared(k, ((w as u64) << 48) | i);
                    }
                }
            });
        }
    });

    let live: Vec<(u64, u64)> = durable.tree().range(..).collect();
    drop(durable);

    // Full image: every logged record (all ops were acked, so everything
    // is flushed). Recovery replays the WAL in LSN order — the oracle.
    let full = Arc::new(storage.crash(usize::MAX));
    let (replayed, rec) = Durable::open(
        full as Arc<dyn Storage>,
        DurabilityConfig::group_commit(),
        concurrent_builder::<u64, u64>(ConcConfig::small(spec.leaf_capacity)),
    )
    .map_err(|e| io_div("contended recover", e))?;
    if rec.torn_tail {
        return Err(diverge("full image reported a torn tail".to_string()));
    }
    let got: Vec<(u64, u64)> = replayed.tree().range(..).collect();
    if got != live {
        let at = got
            .iter()
            .zip(&live)
            .position(|(a, b)| a != b)
            .unwrap_or(got.len().min(live.len()));
        return Err(diverge(format!(
            "replaying the full WAL (LSN {}) diverges from the live tree: \
             {} vs {} entries, first mismatch at #{at} \
             (replayed {:?} vs live {:?}) — log order broke apply order on a contended key",
            rec.recovered_lsn,
            got.len(),
            live.len(),
            got.get(at),
            live.get(at),
        )));
    }
    replayed
        .tree()
        .check_consistency()
        .map_err(|e| diverge(format!("replayed tree consistency: {e}")))?;
    Ok(live.len())
}

/// Crash differential for transactional commit groups: how many cuts to
/// fuzz and where the fsync floor comes from. The workload itself is a
/// [`TxnOp`] sequence (see [`crate::TxnWorkloadSpec`]).
#[derive(Clone, Copy, Debug)]
pub struct TxnCrashSpec {
    /// Random WAL byte-prefix cuts to test (plus the empty and full
    /// images, always).
    pub cuts: usize,
    /// Leaf capacity for the version tree (small = interesting
    /// structure early).
    pub leaf_capacity: usize,
    /// `commit_all` (fsync barrier) after every N executed ops
    /// (`0` = never) — raises the durability floor mid-history.
    pub commit_every: usize,
    /// Run a checkpoint after this many executed ops, so cuts also land
    /// in the snapshot-plus-tail regime.
    pub checkpoint_at: Option<usize>,
    /// Seed for cut selection.
    pub seed: u64,
}

impl Default for TxnCrashSpec {
    fn default() -> Self {
        TxnCrashSpec {
            cuts: 56,
            leaf_capacity: 8,
            commit_every: 32,
            checkpoint_at: None,
            seed: 0x7C5_CA57,
        }
    }
}

/// What the transactional crash fuzzer observed on success.
#[derive(Clone, Copy, Debug)]
pub struct TxnCrashReport {
    /// Ops executed.
    pub ops: usize,
    /// Transactions that committed (each = one WAL commit group).
    pub commits: usize,
    /// Crash points recovered from (`spec.cuts` + empty + full image).
    pub cuts_tested: usize,
    /// Cuts where recovery reported a torn tail (mid-frame or
    /// mid-commit-group cut).
    pub torn_cuts: usize,
    /// Commits guaranteed durable by the last fsync barrier.
    pub floor_commits: usize,
    /// Smallest commit prefix any cut recovered to.
    pub min_prefix: usize,
    /// Largest commit prefix any cut recovered to (the full image must
    /// reach `commits`).
    pub max_prefix: usize,
}

/// Runs a deterministic interleaved-transaction workload against a
/// durable [`TxnStore`] with a tiny WAL buffer, then re-opens the store
/// from arbitrary byte prefixes of the append stream and asserts
/// **commit atomicity across crashes**: every recovered state must equal
/// the committed state after some prefix of the commit order — a
/// recovered state containing part of a transaction's write set matches
/// no prefix and fails. Cuts at or above the durability floor must
/// recover at least every fsynced commit, and the full image must
/// recover all of them with no torn tail.
pub fn replay_txn_crash(ops: &[TxnOp], spec: &TxnCrashSpec) -> Result<TxnCrashReport, Divergence> {
    let diverge = |detail: String| Divergence {
        family: "TxnStore (crash)",
        op_index: usize::MAX,
        detail,
    };
    let io = |stage: &'static str, e: Error| Divergence {
        family: "TxnStore (crash)",
        op_index: usize::MAX,
        detail: format!("{stage}: {e}"),
    };
    let config = TxnConfig::default()
        .with_tree(ConcConfig::small(spec.leaf_capacity).with_olc(true))
        .with_durability(crash_config())
        .with_gc_every(0);
    let storage = Arc::new(MemStorage::new());
    let (store, _) = TxnStore::open(storage.clone() as Arc<dyn Storage>, config.clone())
        .map_err(|e| io("open", e))?;

    // Execute the workload, recording the committed state after every
    // successful commit: `states[j]` is the visible state once the first
    // j commits (in commit order) have applied, `states[0]` is empty.
    let mut states: Vec<Vec<(u64, u64)>> = vec![Vec::new()];
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut floor_commits = 0usize;
    {
        let mut slots: Vec<Option<quit_durability::Txn<'_, u64, u64>>> =
            (0..MAX_SLOTS).map(|_| None).collect();
        let mut shadows: Vec<BTreeMap<u64, Option<u64>>> =
            (0..MAX_SLOTS).map(|_| BTreeMap::new()).collect();
        for (i, op) in ops.iter().enumerate() {
            let s = usize::from(op.slot()) % MAX_SLOTS;
            // Begin restarts the slot (dropping any occupant aborts it);
            // every other op implicitly begins on an empty slot.
            if matches!(*op, TxnOp::Begin(_)) || slots[s].is_none() {
                slots[s] = Some(store.begin());
                shadows[s].clear();
            }
            match *op {
                TxnOp::Begin(_) => {}
                TxnOp::Read(_, key) => {
                    let _ = slots[s].as_ref().expect("ensured open").get(key);
                }
                TxnOp::Write(_, key, value) => {
                    slots[s].as_mut().expect("ensured open").insert(key, value);
                    shadows[s].insert(key, Some(value));
                }
                TxnOp::Delete(_, key) => {
                    slots[s].as_mut().expect("ensured open").delete(key);
                    shadows[s].insert(key, None);
                }
                TxnOp::Commit(_) => match slots[s].take().expect("ensured open").commit() {
                    // Read-only commits write no commit group and change
                    // no state, so they add no prefix entry.
                    Ok(_) if shadows[s].is_empty() => {}
                    Ok(_) => {
                        for (&key, &value) in &shadows[s] {
                            match value {
                                Some(v) => {
                                    model.insert(key, v);
                                }
                                None => {
                                    model.remove(&key);
                                }
                            }
                        }
                        shadows[s].clear();
                        states.push(model.iter().map(|(&k, &v)| (k, v)).collect());
                    }
                    Err(Error::Conflict(_)) => shadows[s].clear(),
                    Err(e) => return Err(io("commit", e)),
                },
                TxnOp::Abort(_) => {
                    slots[s].take().expect("ensured open").abort();
                    shadows[s].clear();
                }
            }
            if spec.commit_every > 0 && (i + 1).is_multiple_of(spec.commit_every) {
                store.commit_all().map_err(|e| io("commit_all", e))?;
                floor_commits = states.len() - 1;
            }
            if spec.checkpoint_at == Some(i) {
                // Checkpoint quiesces committers, so the open slots must
                // not hold the stripe locks — they don't (locks are only
                // taken inside commit), but they do pin snapshots; that
                // is fine, checkpoints only need the commit gate.
                store.checkpoint().map_err(|e| io("checkpoint", e))?;
                floor_commits = states.len() - 1;
            }
        }
        // Leftover open transactions die with the process — their
        // intents must never surface after recovery.
    }
    let commits = states.len() - 1;
    // Push all buffered WAL bytes to storage *without* fsync, so the
    // full image contains every commit group while cuts can still tear.
    store.flush().map_err(|e| io("flush", e))?;
    drop(store);

    let total = storage.total_appended();
    let durable = storage.durable_bytes();
    let mut cut_points: Vec<usize> = vec![0, usize::MAX];
    let mut rng = spec.seed ^ 0x7C5_CA57_F00D;
    for i in 0..spec.cuts {
        let r = splitmix(&mut rng) as usize;
        // Half the cuts land in the torn tail past the fsync floor.
        let cut = if i % 2 == 0 && total > durable {
            durable + r % (total - durable + 1)
        } else {
            r % (total + 1)
        };
        cut_points.push(cut);
    }

    let mut report = TxnCrashReport {
        ops: ops.len(),
        commits,
        cuts_tested: 0,
        torn_cuts: 0,
        floor_commits,
        min_prefix: usize::MAX,
        max_prefix: 0,
    };
    for &cut in &cut_points {
        let img = Arc::new(storage.crash(cut)) as Arc<dyn Storage>;
        let (recovered, rec) = TxnStore::open(img, config.clone()).map_err(|e| io("recover", e))?;
        recovered
            .mvcc()
            .check_consistency()
            .map_err(|e| diverge(format!("cut {cut}: recovered tree consistency: {e}")))?;
        let got: Vec<(u64, u64)> = recovered.scan(..);
        let Some(j) = (0..states.len()).rev().find(|&j| states[j] == got) else {
            return Err(diverge(format!(
                "cut {cut}: recovered state ({} keys) matches no committed prefix \
                 (0..={commits} commits) — a partial transaction is visible",
                got.len(),
            )));
        };
        if j < floor_commits {
            return Err(diverge(format!(
                "cut {cut}: recovered only {j} commits but {floor_commits} were \
                 fsync-durable before the crash",
            )));
        }
        if cut == usize::MAX {
            if j != commits {
                return Err(diverge(format!(
                    "full image recovered {j} of {commits} commits",
                )));
            }
            if rec.torn_tail {
                return Err(diverge("full image reported a torn tail".to_string()));
            }
        }
        report.cuts_tested += 1;
        report.torn_cuts += usize::from(rec.torn_tail);
        report.min_prefix = report.min_prefix.min(j);
        report.max_prefix = report.max_prefix.max(j);
    }
    Ok(report)
}

#[cfg(all(
    test,
    not(feature = "inject-wal-bug"),
    not(feature = "inject-split-bug"),
    not(feature = "inject-txn-bug")
))]
mod tests {
    use super::*;
    use crate::si_checker::TxnWorkloadSpec;
    use crate::workload::{OpMix, WorkloadSpec};

    #[test]
    fn tiny_workload_crash_fuzz_is_consistent() {
        let workload = WorkloadSpec {
            ops: 300,
            seed: 0xFEED,
            mix: OpMix::mixed(),
            ..WorkloadSpec::default()
        };
        let report =
            replay_crash(&workload, &CrashSpec::default()).unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(report.ops, 300);
        assert!(report.records > 0);
        assert_eq!(report.cuts_tested, 2 + CrashSpec::default().cuts);
        assert_eq!(report.max_recovered, report.records as u64);
        // Rotation fsyncs can make more durable than the promised floor,
        // never less.
        assert!(report.min_recovered >= report.floor_lsn);
    }

    #[test]
    fn checkpointed_workload_recovers_snapshot_plus_tail() {
        let workload = WorkloadSpec {
            ops: 400,
            seed: 0xFACE,
            ..WorkloadSpec::default()
        };
        let spec = CrashSpec {
            checkpoint_at: Some(200),
            ..CrashSpec::default()
        };
        replay_crash(&workload, &spec).unwrap_or_else(|d| panic!("{d}"));
    }

    #[test]
    fn concurrent_crash_prefix_consistency() {
        let report =
            replay_crash_concurrent(&ConcCrashSpec::default()).unwrap_or_else(|d| panic!("{d}"));
        assert!(report.captured_floor > 0);
        assert!(report.cuts_tested >= 2);
        assert!(report.final_len > 0);
    }

    #[test]
    fn txn_crash_fuzz_is_prefix_consistent() {
        let ops = TxnWorkloadSpec {
            ops: 400,
            seed: 0xBEEF,
            ..TxnWorkloadSpec::default()
        }
        .generate();
        let spec = TxnCrashSpec {
            cuts: 12,
            ..TxnCrashSpec::default()
        };
        let report = replay_txn_crash(&ops, &spec).unwrap_or_else(|d| panic!("{d}"));
        assert!(report.commits > 0);
        assert_eq!(report.cuts_tested, 2 + spec.cuts);
        assert_eq!(report.max_prefix, report.commits, "full image recovers all");
        assert!(report.min_prefix >= report.floor_commits);
    }

    #[test]
    fn contended_keys_full_replay_matches_live_tree() {
        let spec = ContendedSpec::default();
        let len = replay_crash_contended(&spec).unwrap_or_else(|d| panic!("{d}"));
        // Duplicate keys are preserved, so the ceiling is total inserts.
        assert!(len <= spec.writers * spec.ops_per_writer);
    }
}

//! The differential oracle: one op sequence, four executions.
//!
//! Every [`Op`] is applied simultaneously to a `BTreeMap`-backed model and
//! to each index family — [`quit_core::BpTree`] (full QuIT), the buffered
//! [`sware::SaBpTree`], and [`quit_concurrent::ConcurrentTree`] — through
//! their common [`quit_core::SortedIndex`] surface. Observable results
//! (presence, values where well-defined, range key sequences, lengths) are
//! compared after every op, and structural invariants (key ordering,
//! separator/occupancy bounds, leaf-chain integrity, poℓe/tail pointer
//! validity) are re-checked after every batch op and on a configurable
//! cadence.
//!
//! Duplicate keys need care: all families retain duplicates, but deleting
//! one instance of a duplicated key may remove *different* instances in
//! different families. The model therefore taints such keys and stops
//! comparing their values (presence and multiplicity stay exact); a key
//! un-taints once every instance is gone.

use crate::workload::Op;
use quit_concurrent::{ConcConfig, ConcurrentTree};
use quit_core::{
    BpTree, NodeLayoutKind, SearchKind, SortedIndex, StorageKind, TreeConfig, Variant,
};
use std::collections::{BTreeMap, BTreeSet};
use sware::{SaBpTree, SwareConfig};

/// Which node-storage backend the single-writer families run on.
///
/// `Paged` puts `BpTree` and `SaBpTree` nodes behind the buffer pool with
/// `pool_pages` resident pages — capping the pool well below the working
/// set makes every replayed op contend with faults and evictions, which is
/// exactly where a pin-discipline bug shows up as a model divergence.
/// `ConcurrentTree` always runs the arena (it rejects paged storage).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OracleBackend {
    /// The in-memory arena (the paper's configuration).
    #[default]
    Arena,
    /// Fixed-size pages behind a buffer pool capped at `pool_pages`.
    Paged {
        /// Maximum resident pages in the pool.
        pool_pages: usize,
    },
}

/// Geometry and cadence knobs for one oracle run.
///
/// Small capacities are the default: they force splits, merges, and
/// buffer flushes to happen every few ops, which is where the bugs live.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Leaf capacity for every family.
    pub leaf_capacity: usize,
    /// SWARE buffer capacity.
    pub buffer_capacity: usize,
    /// Run the structural invariant suites every this many ops (besides
    /// after every batch op and at the end).
    pub check_every: usize,
    /// Leaf slot layout for every family (the layout is part of the
    /// workload spec: every suite runs once dense, once gapped).
    pub node_layout: NodeLayoutKind,
    /// Intra-node search implementation for every family.
    pub search_kind: SearchKind,
    /// Node storage for `BpTree` and `SaBpTree` (the concurrent family
    /// always runs the arena).
    pub backend: OracleBackend,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            leaf_capacity: 8,
            buffer_capacity: 32,
            check_every: 256,
            node_layout: NodeLayoutKind::Dense,
            search_kind: SearchKind::Binary,
            backend: OracleBackend::Arena,
        }
    }
}

impl OracleConfig {
    /// Same geometry, different node layout / search implementation.
    pub fn with_layout(mut self, layout: NodeLayoutKind, kind: SearchKind) -> Self {
        self.node_layout = layout;
        self.search_kind = kind;
        self
    }

    /// Same geometry, different storage backend.
    pub fn with_backend(mut self, backend: OracleBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Both layout variants of this config, for suites that sweep them.
    pub fn layout_sweep(&self) -> [OracleConfig; 2] {
        [
            self.clone()
                .with_layout(NodeLayoutKind::Dense, SearchKind::Binary),
            self.clone()
                .with_layout(NodeLayoutKind::Gapped, SearchKind::Branchless),
        ]
    }
}

/// A disagreement between a family and the model (or a structural
/// invariant violation, or a panic inside an index).
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Which family diverged.
    pub family: &'static str,
    /// Index of the op being applied (or just applied) when detected.
    pub op_index: usize,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "divergence in {} at op {}: {}",
            self.family, self.op_index, self.detail
        )
    }
}

/// Totals from a completed (non-diverging) replay.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayReport {
    /// Ops replayed per family.
    pub ops: usize,
    /// Structural invariant suite executions (per family).
    pub structural_checks: usize,
}

/// The `BTreeMap` reference model with duplicate-taint tracking.
///
/// Shared with the concurrent differential mode (`crate::concurrent`),
/// where each writer thread keeps a private `Model` for its own key
/// partition and the partitions are merged after the threads join.
#[derive(Default)]
pub(crate) struct Model {
    pub(crate) map: BTreeMap<u64, Vec<u64>>,
    pub(crate) tainted: BTreeSet<u64>,
    pub(crate) len: usize,
}

impl Model {
    pub(crate) fn insert(&mut self, k: u64, v: u64) {
        let values = self.map.entry(k).or_default();
        values.push(v);
        if values.len() > 1 {
            // Families may store duplicates in different orders; values
            // for this key are no longer comparable.
            self.tainted.insert(k);
        }
        self.len += 1;
    }

    pub(crate) fn delete(&mut self, k: u64) -> bool {
        if let Some(values) = self.map.get_mut(&k) {
            values.pop();
            if values.is_empty() {
                self.map.remove(&k);
                // Fully gone everywhere: a later re-insert is fresh.
                self.tainted.remove(&k);
            }
            self.len -= 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn contains(&self, k: u64) -> bool {
        self.map.contains_key(&k)
    }

    /// The value of `k` when it is exactly one, untainted instance —
    /// the only case where all families must agree on the value.
    pub(crate) fn single_value(&self, k: u64) -> Option<u64> {
        if self.tainted.contains(&k) {
            return None;
        }
        match self.map.get(&k).map(Vec::as_slice) {
            Some([v]) => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn range_keys(&self, s: u64, e: u64) -> Vec<u64> {
        self.map
            .range(s..e)
            .flat_map(|(k, vs)| std::iter::repeat_n(*k, vs.len()))
            .collect()
    }
}

/// One index family under test.
// Exactly three long-lived instances exist per replay, so the size skew
// between variants costs nothing; boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum Family {
    Quit(BpTree<u64, u64>),
    Sware(SaBpTree<u64, u64>),
    Concurrent(ConcurrentTree<u64, u64>),
}

impl Family {
    fn name(&self) -> &'static str {
        match self {
            Family::Quit(_) => "BpTree(Quit)",
            Family::Sware(_) => "SaBpTree",
            Family::Concurrent(_) => "ConcurrentTree",
        }
    }

    fn insert(&mut self, k: u64, v: u64) {
        match self {
            Family::Quit(t) => SortedIndex::insert(t, k, v),
            Family::Sware(t) => SortedIndex::insert(t, k, v),
            Family::Concurrent(t) => SortedIndex::insert(t, k, v),
        }
    }

    fn insert_batch(&mut self, entries: &[(u64, u64)]) {
        match self {
            Family::Quit(t) => {
                SortedIndex::insert_batch(t, entries);
            }
            Family::Sware(t) => {
                SortedIndex::insert_batch(t, entries);
            }
            Family::Concurrent(t) => {
                SortedIndex::insert_batch(t, entries);
            }
        }
    }

    /// Applies a sorted run. `BpTree` takes its dedicated append path when
    /// the run still sits above the current max key (shrinking can remove
    /// the ops that established the watermark, so this must stay total);
    /// the other families batch-insert.
    fn bulk_load(&mut self, entries: &[(u64, u64)]) {
        match self {
            Family::Quit(t) => {
                let appendable = entries.windows(2).all(|w| w[0].0 < w[1].0)
                    && t.max_key().is_none_or(|m| entries[0].0 >= m);
                if appendable {
                    t.append_sorted(entries.iter().copied());
                } else {
                    t.insert_batch(entries);
                }
            }
            _ => self.insert_batch(entries),
        }
    }

    fn get(&mut self, k: u64) -> Option<u64> {
        match self {
            Family::Quit(t) => SortedIndex::get(t, k),
            Family::Sware(t) => SortedIndex::get(t, k),
            Family::Concurrent(t) => SortedIndex::get(t, k),
        }
    }

    fn delete(&mut self, k: u64) -> Option<u64> {
        match self {
            Family::Quit(t) => SortedIndex::delete(t, k),
            Family::Sware(t) => SortedIndex::delete(t, k),
            Family::Concurrent(t) => SortedIndex::delete(t, k),
        }
    }

    fn range(&mut self, s: u64, e: u64) -> Vec<(u64, u64)> {
        match self {
            Family::Quit(t) => SortedIndex::range(t, s..e).collect(),
            Family::Sware(t) => SortedIndex::range(t, s..e).collect(),
            Family::Concurrent(t) => SortedIndex::range(t, s..e).collect(),
        }
    }

    fn reset_metrics(&self) {
        match self {
            Family::Quit(t) => SortedIndex::<u64, u64>::reset_metrics(t),
            Family::Sware(t) => SortedIndex::<u64, u64>::reset_metrics(t),
            Family::Concurrent(t) => SortedIndex::<u64, u64>::reset_metrics(t),
        }
    }

    fn len(&self) -> usize {
        match self {
            Family::Quit(t) => t.len(),
            Family::Sware(t) => t.len(),
            Family::Concurrent(t) => t.len(),
        }
    }

    /// The family's full structural invariant suite.
    fn check_structure(&self) -> Result<(), String> {
        match self {
            Family::Quit(t) => t.check_invariants().map_err(|e| e.to_string()),
            Family::Sware(t) => t.check_invariants(),
            Family::Concurrent(t) => t.check_consistency(),
        }
    }
}

/// Replays `ops` against the model and every family, comparing observable
/// behaviour op-by-op. Returns the first [`Divergence`], if any.
pub fn replay(ops: &[Op], config: &OracleConfig) -> Result<ReplayReport, Divergence> {
    let storage = match config.backend {
        OracleBackend::Arena => StorageKind::Arena,
        OracleBackend::Paged { pool_pages } => StorageKind::paged(pool_pages),
    };
    let tree_config = TreeConfig::small(config.leaf_capacity)
        .with_node_layout(config.node_layout)
        .with_search_kind(config.search_kind)
        .with_storage(storage);
    let mut sware_config = SwareConfig::small(config.buffer_capacity, config.leaf_capacity);
    sware_config.tree_config = sware_config
        .tree_config
        .with_node_layout(config.node_layout)
        .with_search_kind(config.search_kind)
        .with_storage(storage);
    let mut families = vec![
        Family::Quit(Variant::Quit.build(tree_config)),
        Family::Sware(SaBpTree::new(sware_config)),
        Family::Concurrent(ConcurrentTree::new(
            ConcConfig::small(config.leaf_capacity)
                .with_node_layout(config.node_layout)
                .with_search_kind(config.search_kind),
        )),
    ];
    let mut model = Model::default();
    let mut report = ReplayReport::default();
    let check_every = config.check_every.max(1);

    for (i, op) in ops.iter().enumerate() {
        let structural_due = match op {
            Op::Insert(k, v) => {
                model.insert(*k, *v);
                for f in &mut families {
                    f.insert(*k, *v);
                }
                false
            }
            Op::InsertBatch(entries) => {
                for &(k, v) in entries {
                    model.insert(k, v);
                }
                for f in &mut families {
                    f.insert_batch(entries);
                }
                true
            }
            Op::BulkLoad(entries) => {
                for &(k, v) in entries {
                    model.insert(k, v);
                }
                for f in &mut families {
                    f.bulk_load(entries);
                }
                true
            }
            Op::Get(k) => {
                let expect = model.contains(*k);
                let single = model.single_value(*k);
                for f in &mut families {
                    let got = f.get(*k);
                    if got.is_some() != expect {
                        return Err(diverge(
                            f,
                            i,
                            format!("get({k}) presence {} vs model {expect}", got.is_some()),
                        ));
                    }
                    if let (Some(want), Some(have)) = (single, got) {
                        if want != have {
                            return Err(diverge(
                                f,
                                i,
                                format!("get({k}) = {have} vs model {want}"),
                            ));
                        }
                    }
                }
                false
            }
            Op::Delete(k) => {
                let expect = model.contains(*k);
                let single = model.single_value(*k);
                for f in &mut families {
                    let got = f.delete(*k);
                    if got.is_some() != expect {
                        return Err(diverge(
                            f,
                            i,
                            format!("delete({k}) presence {} vs model {expect}", got.is_some()),
                        ));
                    }
                    if let (Some(want), Some(have)) = (single, got) {
                        if want != have {
                            return Err(diverge(
                                f,
                                i,
                                format!("delete({k}) = {have} vs model {want}"),
                            ));
                        }
                    }
                }
                model.delete(*k);
                false
            }
            Op::Range(s, e) => {
                let want_keys = model.range_keys(*s, *e);
                for f in &mut families {
                    let got = f.range(*s, *e);
                    let got_keys: Vec<u64> = got.iter().map(|&(k, _)| k).collect();
                    if got_keys != want_keys {
                        return Err(diverge(
                            f,
                            i,
                            format!("range({s},{e}) keys {got_keys:?} vs model {want_keys:?}"),
                        ));
                    }
                    for &(k, v) in &got {
                        if let Some(want) = model.single_value(k) {
                            if v != want {
                                return Err(diverge(
                                    f,
                                    i,
                                    format!("range({s},{e}) value at key {k}: {v} vs model {want}"),
                                ));
                            }
                        }
                    }
                }
                false
            }
            Op::ResetMetrics => {
                for f in &families {
                    f.reset_metrics();
                }
                false
            }
        };
        report.ops += 1;

        for f in &families {
            if f.len() != model.len {
                return Err(diverge(
                    f,
                    i,
                    format!("len {} vs model {}", f.len(), model.len),
                ));
            }
        }
        if structural_due || (i + 1) % check_every == 0 {
            check_all(&families, i, &mut report)?;
        }
    }

    // Final sweep: structure plus full contents.
    check_all(&families, ops.len().saturating_sub(1), &mut report)?;
    let want_all = model.range_keys(0, u64::MAX);
    for f in &mut families {
        let got: Vec<u64> = f.range(0, u64::MAX).iter().map(|&(k, _)| k).collect();
        if got != want_all {
            return Err(diverge(
                f,
                ops.len().saturating_sub(1),
                format!(
                    "final contents: {} keys vs model {} (first mismatch at {:?})",
                    got.len(),
                    want_all.len(),
                    got.iter().zip(&want_all).position(|(a, b)| a != b)
                ),
            ));
        }
    }
    Ok(report)
}

/// [`replay`], but converting panics inside an index into a [`Divergence`]
/// so the shrinker can minimize panicking sequences too.
pub fn replay_guarded(ops: &[Op], config: &OracleConfig) -> Result<ReplayReport, Divergence> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| replay(ops, config))) {
        Ok(result) => result,
        Err(payload) => Err(Divergence {
            family: "(panic)",
            op_index: usize::MAX,
            detail: proptest::test_runner::panic_message(payload),
        }),
    }
}

fn diverge(family: &Family, op_index: usize, detail: String) -> Divergence {
    Divergence {
        family: family.name(),
        op_index,
        detail,
    }
}

fn check_all(
    families: &[Family],
    op_index: usize,
    report: &mut ReplayReport,
) -> Result<(), Divergence> {
    for f in families {
        f.check_structure()
            .map_err(|detail| diverge(f, op_index, detail))?;
    }
    report.structural_checks += 1;
    Ok(())
}

// Replay-based unit tests step aside under the injected bugs (the search
// bug poisons even binary-search configs through the OLC raw descent).
#[cfg(test)]
#[cfg(not(feature = "inject-search-bug"))]
mod tests {
    use super::*;
    #[cfg(not(feature = "inject-split-bug"))]
    use crate::workload::{OpMix, WorkloadSpec};

    #[test]
    fn empty_and_tiny_sequences_replay() {
        let cfg = OracleConfig::default();
        assert!(replay(&[], &cfg).is_ok());
        let ops = vec![
            Op::Insert(5, 1),
            Op::Get(5),
            Op::Delete(5),
            Op::Get(5),
            Op::ResetMetrics,
            Op::Range(0, 10),
        ];
        let report = replay(&ops, &cfg).unwrap();
        assert_eq!(report.ops, 6);
        assert!(report.structural_checks >= 1);
    }

    #[test]
    fn duplicate_deletes_do_not_false_positive() {
        // Two instances of key 3 with different values: families may
        // remove either instance; the taint logic must absorb that.
        let ops = vec![
            Op::Insert(3, 1),
            Op::Insert(3, 2),
            Op::Delete(3),
            Op::Get(3),
            Op::Range(0, 10),
            Op::Delete(3),
            Op::Get(3),
        ];
        replay(&ops, &OracleConfig::default()).unwrap();
    }

    #[test]
    fn bulk_load_fallback_survives_out_of_order_runs() {
        // A shrunk-looking sequence where the bulk run is *not* above the
        // current max: the oracle must fall back, not panic.
        let ops = vec![
            Op::Insert(100, 1),
            Op::BulkLoad(vec![(10, 2), (11, 3)]),
            Op::Range(0, 200),
        ];
        replay(&ops, &OracleConfig::default()).unwrap();
    }

    #[cfg(not(feature = "inject-split-bug"))]
    #[test]
    fn generated_workloads_replay_clean() {
        for seed in 0..4u64 {
            let ops = WorkloadSpec {
                ops: 800,
                seed,
                k_fraction: 0.1 * seed as f64,
                mix: if seed % 2 == 0 {
                    OpMix::mixed()
                } else {
                    OpMix::ingest_heavy()
                },
                ..WorkloadSpec::default()
            }
            .generate();
            for cfg in OracleConfig::default().layout_sweep() {
                replay(&ops, &cfg)
                    .unwrap_or_else(|d| panic!("seed {seed} layout {:?}: {d}", cfg.node_layout));
            }
        }
    }

    #[test]
    fn layout_sweep_covers_both_layouts() {
        let sweep = OracleConfig::default().layout_sweep();
        assert_eq!(sweep[0].node_layout, NodeLayoutKind::Dense);
        assert_eq!(sweep[1].node_layout, NodeLayoutKind::Gapped);
        // Geometry carries over unchanged.
        assert_eq!(
            sweep[1].leaf_capacity,
            OracleConfig::default().leaf_capacity
        );
    }
}

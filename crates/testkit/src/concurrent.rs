//! True multi-threaded differential mode for [`ConcurrentTree`].
//!
//! The single-threaded oracle ([`crate::replay`]) cannot exercise the
//! optimistic-lock-coupling machinery: versions never conflict without a
//! concurrent writer. [`replay_concurrent`] closes that gap with a
//! *partitioned* differential design that stays exact under real
//! concurrency:
//!
//! - **N writer threads** own disjoint key partitions (writer `w` only
//!   touches keys with `key % writers == w`), so each writer's view of its
//!   own partition is sequential and can be checked op-by-op against a
//!   private [`Model`] — presence and (for untainted single-instance keys)
//!   values are compared on every delete and periodic self-get.
//! - **M reader threads** roam the whole key space while writers run.
//!   They cannot know whether a racing key is present, but every observed
//!   value must carry the tag of the partition's writer, and every range
//!   scan must come back sorted — torn optimistic reads violate one of
//!   the two.
//! - After each thread joins, the tree's full structural invariant suite
//!   ([`ConcurrentTree::check_consistency`]) runs again, and the final
//!   tree contents are compared against the *merged* per-writer models:
//!   exact length, exact key multiset, exact values for untainted keys.
//!
//! Every thread derives its RNG stream from one base seed (SplitMix64,
//! same scheme as `tests/concurrent_stress.rs`), so a failing run is
//! replayed bit-for-bit by exporting `QUIT_STRESS_SEED`.

use crate::oracle::{Divergence, Model};
use quit_concurrent::{ConcConfig, ConcurrentTree};
use quit_core::{NodeLayoutKind, SearchKind};
use std::sync::atomic::{AtomicBool, Ordering};

/// Values are tagged with the owning writer in the top bits so readers
/// can validate any observed value against its key's partition.
const WRITER_TAG_SHIFT: u32 = 48;

/// Shape of one concurrent differential run.
#[derive(Clone, Debug)]
pub struct ConcSpec {
    /// Writer threads; each owns the key partition `key % writers == w`.
    pub writers: usize,
    /// Reader threads roaming the whole key space while writers run.
    pub readers: usize,
    /// Mutating ops per writer (~80% inserts, ~20% deletes).
    pub ops_per_writer: usize,
    /// Per-writer key-stream width: writer `w` draws raw keys from
    /// `0..key_space` and maps them to `raw * writers + w`.
    pub key_space: u64,
    /// Base seed; every thread's stream is derived from it.
    pub seed: u64,
    /// Leaf capacity (small values force constant splits).
    pub leaf_capacity: usize,
    /// Whether optimistic lock coupling is enabled on the tree.
    pub olc: bool,
    /// Leaf slot layout under test.
    pub node_layout: NodeLayoutKind,
    /// Intra-node search implementation under test (OLC raw descents
    /// always stay on the branchless scalar path regardless).
    pub search_kind: SearchKind,
}

impl Default for ConcSpec {
    fn default() -> Self {
        ConcSpec {
            writers: 2,
            readers: 2,
            ops_per_writer: 4_000,
            key_space: 1_000,
            seed: 0xC0FF_EE00,
            leaf_capacity: 8,
            olc: true,
            node_layout: NodeLayoutKind::Dense,
            search_kind: SearchKind::Binary,
        }
    }
}

impl ConcSpec {
    /// Same run shape, different node layout / search implementation.
    pub fn with_layout(mut self, layout: NodeLayoutKind, kind: SearchKind) -> Self {
        self.node_layout = layout;
        self.search_kind = kind;
        self
    }
}

/// Totals from a completed (divergence-free) concurrent replay.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConcReport {
    /// Mutating ops executed across all writers.
    pub writer_ops: usize,
    /// Lookups/scans executed across all readers.
    pub reader_ops: usize,
    /// Final tree length (equals the merged model's).
    pub final_len: usize,
    /// Optimistic restarts observed by the tree's metrics.
    pub olc_restarts: u64,
    /// Optimistic-to-pessimistic fallbacks observed.
    pub olc_fallbacks: u64,
}

/// SplitMix64 step — the same generator `tests/concurrent_stress.rs`
/// uses, so seeds reported by either harness mean the same streams.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-thread stream seed derived from the base seed.
fn thread_seed(base: u64, salt: u64) -> u64 {
    let mut s = base ^ salt.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix(&mut s)
}

/// Base seed for concurrent differential runs: `QUIT_STRESS_SEED` when
/// set and parseable, else `default_seed`. The chosen seed is printed so
/// a failure in CI logs is reproducible locally.
pub fn conc_base_seed(default_seed: u64) -> u64 {
    let seed = std::env::var("QUIT_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_seed);
    println!("QUIT_STRESS_SEED={seed}");
    seed
}

fn diverge(detail: String) -> Divergence {
    Divergence {
        family: "ConcurrentTree",
        op_index: usize::MAX,
        detail,
    }
}

/// Runs `spec.writers` writer threads and `spec.readers` reader threads
/// against one [`ConcurrentTree`], checking per-partition behaviour
/// op-by-op, reader-observed tags and ordering continuously, structural
/// invariants after every join, and the merged model differentially at
/// the end. Returns the first [`Divergence`] found, if any.
pub fn replay_concurrent(spec: &ConcSpec) -> Result<ConcReport, Divergence> {
    assert!(spec.writers > 0, "need at least one writer");
    let tree: ConcurrentTree<u64, u64> = ConcurrentTree::new(
        ConcConfig::small(spec.leaf_capacity)
            .with_olc(spec.olc)
            .with_node_layout(spec.node_layout)
            .with_search_kind(spec.search_kind),
    );
    let stop = AtomicBool::new(false);

    let (models, reader_ops, join_checks) = std::thread::scope(|s| {
        let writer_handles: Vec<_> = (0..spec.writers)
            .map(|w| {
                let tree = &tree;
                s.spawn(move || writer_thread(tree, spec, w))
            })
            .collect();
        let reader_handles: Vec<_> = (0..spec.readers)
            .map(|r| {
                let tree = &tree;
                let stop = &stop;
                s.spawn(move || reader_thread(tree, spec, r, stop))
            })
            .collect();

        // Join writers one at a time, re-running the structural suite
        // after every join: a writer that corrupted the tree is caught
        // while the other threads are still live. The concurrent variant
        // skips only the chain-total-vs-len comparison, which cannot be
        // exact while the remaining writers keep mutating.
        let mut models = Vec::with_capacity(spec.writers);
        let mut join_checks = Vec::new();
        for h in writer_handles {
            let outcome = h.join().map_err(|_| diverge("writer panicked".into()));
            models.push(outcome.and_then(|r| r));
            join_checks.push(tree.check_consistency_concurrent());
        }
        stop.store(true, Ordering::Relaxed);
        // Writers are done: from here the tree is mutation-quiescent and
        // the exact check applies after every reader join.
        let mut reader_ops = Vec::with_capacity(spec.readers);
        for h in reader_handles {
            let outcome = h.join().map_err(|_| diverge("reader panicked".into()));
            reader_ops.push(outcome.and_then(|r| r));
            join_checks.push(tree.check_consistency());
        }
        (models, reader_ops, join_checks)
    });

    // Surface the first thread-local divergence (threads already joined).
    let mut merged = Model::default();
    let mut writer_ops = 0usize;
    for outcome in models {
        let (model, ops) = outcome?;
        writer_ops += ops;
        // Partitions are disjoint, so merging never collides on a key.
        merged.len += model.len;
        merged.tainted.extend(model.tainted);
        for (k, vs) in model.map {
            merged.map.insert(k, vs);
        }
    }
    let mut total_reader_ops = 0usize;
    for outcome in reader_ops {
        total_reader_ops += outcome?;
    }
    for (j, check) in join_checks.into_iter().enumerate() {
        check.map_err(|e| diverge(format!("consistency after join #{j}: {e}")))?;
    }

    // All threads joined: the structural suite and the merged-model
    // differential must now hold exactly.
    tree.check_consistency()
        .map_err(|e| diverge(format!("post-join consistency: {e}")))?;
    if tree.len() != merged.len {
        return Err(diverge(format!(
            "final len {} vs merged model {}",
            tree.len(),
            merged.len
        )));
    }
    let got: Vec<(u64, u64)> = tree.collect_all();
    let want_keys = merged.range_keys(0, u64::MAX);
    let got_keys: Vec<u64> = got.iter().map(|&(k, _)| k).collect();
    if got_keys != want_keys {
        let first = got_keys
            .iter()
            .zip(&want_keys)
            .position(|(a, b)| a != b)
            .unwrap_or(got_keys.len().min(want_keys.len()));
        return Err(diverge(format!(
            "final key multiset mismatch: {} vs model {} keys, first at {first}",
            got_keys.len(),
            want_keys.len()
        )));
    }
    for &(k, v) in &got {
        if let Some(want) = merged.single_value(k) {
            if v != want {
                return Err(diverge(format!("final value at key {k}: {v} vs {want}")));
            }
        }
    }

    let stats = tree.stats();
    Ok(ConcReport {
        writer_ops,
        reader_ops: total_reader_ops,
        final_len: tree.len(),
        olc_restarts: stats.olc_restarts.get(),
        olc_fallbacks: stats.olc_fallbacks.get(),
    })
}

/// One writer: mutates only its own partition, checking each op against
/// its private model (sequential within the partition, so exact).
fn writer_thread(
    tree: &ConcurrentTree<u64, u64>,
    spec: &ConcSpec,
    w: usize,
) -> Result<(Model, usize), Divergence> {
    let writers = spec.writers as u64;
    let mut st = thread_seed(spec.seed, w as u64);
    let mut model = Model::default();
    let mut seq: u64 = 0;
    for i in 0..spec.ops_per_writer {
        let r = splitmix(&mut st);
        let k = (r % spec.key_space) * writers + w as u64;
        if r >> 60 < 13 {
            // ~80%: insert a tagged value.
            let v = ((w as u64) << WRITER_TAG_SHIFT) | seq;
            seq += 1;
            tree.insert(k, v);
            model.insert(k, v);
        } else {
            // ~20%: delete; presence is exact within our own partition.
            let expect = model.contains(k);
            let single = model.single_value(k);
            let got = tree.delete(k);
            if got.is_some() != expect {
                return Err(diverge(format!(
                    "writer {w} op {i}: delete({k}) presence {} vs model {expect}",
                    got.is_some()
                )));
            }
            if let (Some(want), Some(have)) = (single, got) {
                if want != have {
                    return Err(diverge(format!(
                        "writer {w} op {i}: delete({k}) = {have} vs model {want}"
                    )));
                }
            }
            model.delete(k);
        }
        // Periodic self-lookup: our own partition is sequential to us, so
        // presence and single-instance values must match exactly even
        // while other threads hammer the rest of the tree.
        if i % 64 == 0 {
            let got = tree.get(k);
            if got.is_some() != model.contains(k) {
                return Err(diverge(format!(
                    "writer {w} op {i}: get({k}) presence {} vs model {}",
                    got.is_some(),
                    model.contains(k)
                )));
            }
            if let (Some(want), Some(have)) = (model.single_value(k), got) {
                if want != have {
                    return Err(diverge(format!(
                        "writer {w} op {i}: get({k}) = {have} vs model {want}"
                    )));
                }
            }
        }
    }
    Ok((model, spec.ops_per_writer))
}

/// One reader: point lookups and range scans over the whole key space.
/// Presence is racy by construction; tag integrity and ordering are not.
fn reader_thread(
    tree: &ConcurrentTree<u64, u64>,
    spec: &ConcSpec,
    r: usize,
    stop: &AtomicBool,
) -> Result<usize, Divergence> {
    let writers = spec.writers as u64;
    let full_span = spec.key_space * writers;
    let mut st = thread_seed(spec.seed, 0xDEAD_BEEF ^ r as u64);
    let mut ops = 0usize;
    loop {
        let rnd = splitmix(&mut st);
        if rnd & 7 != 0 {
            let k = rnd % full_span;
            if let Some(v) = tree.get(k) {
                if v >> WRITER_TAG_SHIFT != k % writers {
                    return Err(diverge(format!(
                        "reader {r}: get({k}) saw tag {} from partition {}",
                        v >> WRITER_TAG_SHIFT,
                        k % writers
                    )));
                }
            }
        } else {
            let s = rnd % full_span;
            let e = s.saturating_add(splitmix(&mut st) % 128);
            let mut last: Option<u64> = None;
            for (k, v) in tree.range(s..e) {
                if !(s..e).contains(&k) {
                    return Err(diverge(format!(
                        "reader {r}: range({s},{e}) yielded out-of-bounds key {k}"
                    )));
                }
                if last.is_some_and(|p| k < p) {
                    return Err(diverge(format!(
                        "reader {r}: range({s},{e}) out of order at key {k}"
                    )));
                }
                if v >> WRITER_TAG_SHIFT != k % writers {
                    return Err(diverge(format!(
                        "reader {r}: range({s},{e}) key {k} saw tag {} from partition {}",
                        v >> WRITER_TAG_SHIFT,
                        k % writers
                    )));
                }
                last = Some(k);
            }
        }
        ops += 1;
        // Guarantee at least one op even when the writers beat us to the
        // finish line (single-core runners schedule coarsely).
        if stop.load(Ordering::Relaxed) {
            return Ok(ops);
        }
    }
}

#[cfg(test)]
#[cfg(not(feature = "inject-search-bug"))]
mod tests {
    use super::*;

    #[test]
    fn small_concurrent_replay_is_divergence_free() {
        let report = replay_concurrent(&ConcSpec {
            writers: 2,
            readers: 1,
            ops_per_writer: 1_500,
            ..ConcSpec::default()
        })
        .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(report.writer_ops, 3_000);
        assert!(report.reader_ops >= 1);
        assert!(report.final_len > 0);
    }

    #[test]
    fn gapped_layout_replay_is_divergence_free() {
        let report = replay_concurrent(
            &ConcSpec {
                writers: 2,
                readers: 1,
                ops_per_writer: 1_500,
                ..ConcSpec::default()
            }
            .with_layout(NodeLayoutKind::Gapped, SearchKind::Branchless),
        )
        .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(report.writer_ops, 3_000);
        assert!(report.final_len > 0);
    }

    #[test]
    fn olc_disabled_replay_is_divergence_free() {
        let report = replay_concurrent(&ConcSpec {
            writers: 2,
            readers: 1,
            ops_per_writer: 1_000,
            olc: false,
            ..ConcSpec::default()
        })
        .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(report.olc_restarts, 0);
        assert_eq!(report.olc_fallbacks, 0);
    }

    #[test]
    fn single_writer_degenerates_to_sequential_differential() {
        let report = replay_concurrent(&ConcSpec {
            writers: 1,
            readers: 0,
            ops_per_writer: 2_000,
            ..ConcSpec::default()
        })
        .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(report.writer_ops, 2_000);
        assert_eq!(report.reader_ops, 0);
    }
}

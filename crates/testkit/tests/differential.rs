//! The differential fuzz suite CI runs: fixed-seed soaks replaying ≥ 50k
//! mixed ops per index family against the `BTreeMap` model, plus a
//! proptest-driven run that exercises the shrinking/persistence path on
//! freshly sampled workloads.
//!
//! Scale it up locally with `QUIT_FUZZ_CASES` (each case adds one
//! seed × knob grid sweep, ~5.5k ops).

// The injected split/search bugs (mutation smoke checks) intentionally
// break these properties; cargo's feature unification applies them to the
// whole test run, so the clean differential suite steps aside. See
// tests/mutation_smoke.rs and tests/search_mutation_smoke.rs.
#![cfg(not(any(
    feature = "inject-split-bug",
    feature = "inject-search-bug",
    feature = "inject-pin-bug"
)))]

use proptest::prelude::*;
use quit_testkit::{
    fuzz_cases, replay, OpMix, OracleBackend, OracleConfig, WorkloadSpec, WorkloadStrategy,
};

/// Knob grid: (K fraction, L fraction) pairs covering sorted, near-sorted,
/// locally scrambled, and fully random ingest — the BoDS regimes of §5.
const KL_GRID: [(f64, f64); 5] = [(0.0, 1.0), (0.05, 1.0), (0.2, 0.25), (0.5, 1.0), (1.0, 0.1)];

/// ≥ 50k mixed ops per family at fixed seeds, across the K/L grid, two op
/// mixes, two tree geometries, and both node layouts.
#[test]
fn fixed_seed_soak() {
    let cases = fuzz_cases(10);
    let geometries = [
        OracleConfig::default(),
        OracleConfig {
            leaf_capacity: 4,
            buffer_capacity: 8,
            check_every: 128,
            ..OracleConfig::default()
        },
    ];
    let mut total_ops = 0usize;
    for case in 0..cases {
        for (g, (k, l)) in KL_GRID.iter().enumerate() {
            let spec = WorkloadSpec {
                ops: 560,
                k_fraction: *k,
                l_fraction: *l,
                seed: 0xD1FF_0000 ^ ((case as u64) << 8) ^ g as u64,
                mix: if (case + g).is_multiple_of(2) {
                    OpMix::mixed()
                } else {
                    OpMix::ingest_heavy()
                },
                dup_fraction: 0.08,
            };
            let ops = spec.generate();
            for cfg in geometries.iter().flat_map(OracleConfig::layout_sweep) {
                let report = replay(&ops, &cfg).unwrap_or_else(|d| {
                    panic!("case {case} K={k} L={l} layout {:?}: {d}", cfg.node_layout)
                });
                total_ops += report.ops;
            }
        }
    }
    // 10 cases × 5 grid points × 2 geometries × 2 layouts × 560 ops
    // = 112k per family.
    assert!(
        total_ops >= 50_000 || cases < 10,
        "soak must replay ≥ 50k ops per family, got {total_ops}"
    );
    eprintln!("differential soak: {total_ops} ops per family, no divergence");
}

/// The same fixed-seed soak on the **paged** backend, with the buffer
/// pool capped at roughly 1/8 of the working set so nearly every op
/// contends with faults and evictions. The oracle demands *exact* model
/// equality op-by-op, so a page served stale (a pin dropped early, a torn
/// eviction, a miscoded node) surfaces as a divergence, not a perf blip.
#[test]
fn fixed_seed_soak_paged_under_pressure() {
    let cases = fuzz_cases(10);
    // ~560 ops at leaf capacity 8 settle around 60–120 live nodes; an
    // 8–16 page pool keeps residency near 1/8 of that working set.
    let geometries = [
        OracleConfig::default().with_backend(OracleBackend::Paged { pool_pages: 16 }),
        OracleConfig {
            leaf_capacity: 4,
            buffer_capacity: 8,
            check_every: 128,
            ..OracleConfig::default()
        }
        .with_backend(OracleBackend::Paged { pool_pages: 8 }),
    ];
    let mut total_ops = 0usize;
    for case in 0..cases {
        for (g, (k, l)) in KL_GRID.iter().enumerate() {
            let spec = WorkloadSpec {
                ops: 560,
                k_fraction: *k,
                l_fraction: *l,
                seed: 0x9A6E_D000 ^ ((case as u64) << 8) ^ g as u64,
                mix: if (case + g).is_multiple_of(2) {
                    OpMix::mixed()
                } else {
                    OpMix::ingest_heavy()
                },
                dup_fraction: 0.08,
            };
            let ops = spec.generate();
            for cfg in geometries.iter().flat_map(OracleConfig::layout_sweep) {
                let report = replay(&ops, &cfg).unwrap_or_else(|d| {
                    panic!("paged case {case} K={k} L={l} {:?}: {d}", cfg.backend)
                });
                total_ops += report.ops;
            }
        }
    }
    assert!(
        total_ops >= 50_000 || cases < 10,
        "paged soak must replay ≥ 50k ops per family, got {total_ops}"
    );
    eprintln!("paged differential soak: {total_ops} ops per family, no divergence");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Freshly sampled workloads (random length, K/L knobs, mix) replay
    /// clean through the full oracle, under both node layouts. On failure
    /// this shrinks to a minimal op list and persists the seed next to
    /// this file.
    #[test]
    fn sampled_workloads_replay_clean(ops in WorkloadStrategy::mixed(400)) {
        for cfg in OracleConfig::default().layout_sweep() {
            let report = replay(&ops, &cfg)
                .unwrap_or_else(|d| panic!("layout {:?}: {d}", cfg.node_layout));
            assert_eq!(report.ops, ops.len());
        }
    }

    /// Same, at the smallest legal geometry where structural edge cases
    /// (splits, merges, root collapse, buffer flushes) fire constantly.
    #[test]
    fn sampled_workloads_replay_clean_tiny_nodes(ops in WorkloadStrategy::ingest_heavy(250)) {
        let tiny = OracleConfig {
            leaf_capacity: 4,
            buffer_capacity: 8,
            check_every: 32,
            ..OracleConfig::default()
        };
        for cfg in tiny.layout_sweep() {
            replay(&ops, &cfg)
                .unwrap_or_else(|d| panic!("layout {:?}: {d}", cfg.node_layout));
        }
    }
}

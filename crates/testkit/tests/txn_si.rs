//! Snapshot-isolation history checks against the real `TxnStore`:
//! fixed-seed multi-writer soaks (≥50k events, both descent modes),
//! deterministic interleaved-transaction workloads, and proptest-driven
//! sampled histories with shrinking.
//!
//! Disabled under every `inject-*` feature: those builds are for the
//! mutation smoke checks, which *expect* failures.

#![cfg(not(any(
    feature = "inject-split-bug",
    feature = "inject-wal-bug",
    feature = "inject-search-bug",
    feature = "inject-txn-bug"
)))]

use proptest::prelude::*;
use quit_testkit::{
    replay_txn_concurrent, replay_txn_history, SiSoakSpec, TxnWorkloadSpec, TxnWorkloadStrategy,
};

/// The headline soak: six writers race 2 000 transactions each over a
/// 384-key space while the version GC runs, and the merged ≥50 000-event
/// history must satisfy every SI axiom. One run per descent mode.
fn soak(olc: bool) {
    let spec = SiSoakSpec {
        threads: 6,
        txns_per_thread: 2_000,
        max_ops_per_txn: 6,
        keys: 384,
        abort_percent: 10,
        conflict_rounds: 8,
        olc,
        leaf_capacity: 32,
        gc_every: 64,
        seed: 0x51_50AC ^ u64::from(olc),
    };
    let report = replay_txn_concurrent(&spec).unwrap_or_else(|v| panic!("olc {olc}: {v}"));
    assert!(
        report.events >= 50_000,
        "soak too small to be meaningful: {} events",
        report.events
    );
    assert_eq!(report.summary.txns, 12_000);
    // Each barrier-aligned round yields exactly threads-1 conflicts
    // deterministically; organic races can only add to that.
    assert!(
        report.stats.conflicts >= 8 * 5,
        "expected at least the {} round conflicts, got {}",
        8 * 5,
        report.stats.conflicts
    );
    assert!(report.summary.committed_writers > 1_000);
    assert!(report.summary.reads_checked > 1_000);
}

#[test]
fn fifty_k_event_soak_holds_si_under_olc() {
    soak(true);
}

#[test]
fn fifty_k_event_soak_holds_si_under_pessimistic_locking() {
    soak(false);
}

#[test]
fn interleaved_fixed_workloads_hold_si_in_both_modes() {
    for seed in [1u64, 0xDEAD, 0x5EED_5EED] {
        let ops = TxnWorkloadSpec {
            ops: 2_000,
            slots: 6,
            keys: 48,
            seed,
        }
        .generate();
        for olc in [false, true] {
            let report = replay_txn_history(&ops, olc)
                .unwrap_or_else(|v| panic!("seed {seed:#x} olc {olc}: {v}"));
            assert!(report.summary.committed > 50, "seed {seed:#x}");
            assert!(report.summary.reads_checked > 50, "seed {seed:#x}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sampled contended histories: any SI violation shrinks to a small
    /// op sequence via the strategy's delta-debugging shrinker.
    #[test]
    fn sampled_histories_hold_si(ops in TxnWorkloadStrategy::contended(300)) {
        replay_txn_history(&ops, true).unwrap_or_else(|v| panic!("{v}"));
    }

    /// The same histories through pessimistic descents.
    #[test]
    fn sampled_histories_hold_si_pessimistic(ops in TxnWorkloadStrategy::contended(300)) {
        replay_txn_history(&ops, false).unwrap_or_else(|v| panic!("{v}"));
    }
}

//! WAL mutation smoke check: the crash fuzzer must catch the framing bug
//! we planted.
//!
//! Built with `--features inject-wal-bug`, `quit-durability` computes the
//! CRC of Delete frames over one byte too few at encode time, so recovery
//! rejects every delete record as torn and silently stops replay early.
//! This suite asserts the crash-recovery differential (1) detects that —
//! a fully intact WAL image that does not recover every logged record is
//! a prefix-consistency violation — (2) shrinks the trigger to a tiny op
//! sequence containing a delete, and (3) round-trips the failing seed
//! through a persisted `.proptest-regressions` file.
//!
//! CI runs this as a separate cargo invocation (feature unification would
//! otherwise poison the clean crash suite, which is `cfg`'d off under
//! this feature).

#![cfg(feature = "inject-wal-bug")]

use proptest::test_runner::{Config, Runner};
use quit_testkit::{replay_crash_ops, CrashSpec, Op, WorkloadStrategy};

/// No random commits: detection rests purely on the deterministic
/// full-image check (an un-torn WAL must recover every record), so every
/// shrunk candidate either fails or passes on the ops alone.
fn crash_spec() -> CrashSpec {
    CrashSpec {
        cuts: 4,
        leaf_capacity: 8,
        commit_every: 0,
        checkpoint_at: None,
        seed: 0xB16_B00B5,
    }
}

fn run_harness(
    label: &str,
    cases: u32,
    regressions: &std::path::Path,
) -> proptest::test_runner::Failure<(Vec<Op>,)> {
    let strategy = (WorkloadStrategy::mixed(160),);
    Runner::new(label, Config::with_cases(cases))
        .with_regressions_file(regressions)
        .run(&strategy, |(ops,)| {
            replay_crash_ops(ops, &crash_spec())
                .map(|_| ())
                .map_err(|d| d.to_string())
        })
        .expect_err("the injected WAL framing bug must be caught")
}

#[test]
fn injected_wal_bug_is_caught_shrunk_and_persisted() {
    let path = std::env::temp_dir().join(format!(
        "quit-testkit-wal-mutation-{}.proptest-regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Fresh hunt: detect and shrink.
    let failure = run_harness("wal_mutation_smoke", 64, &path);
    assert!(!failure.replayed, "first run must find the bug itself");
    let minimal = &failure.minimal.0;
    assert!(
        minimal.len() <= 10,
        "counterexample must shrink to ≤ 10 ops, got {}: {minimal:?}",
        minimal.len()
    );
    assert!(
        minimal.iter().any(|op| matches!(op, Op::Delete(_))),
        "the bug corrupts delete frames; the reproducer must delete: {minimal:?}"
    );
    let text = std::fs::read_to_string(&path).expect("regressions file written");
    assert!(
        text.contains(&format!("cc {:016x}", failure.seed)),
        "seed persisted: {text}"
    );

    // Round trip: a replay-only runner (zero fresh cases) must reproduce
    // the same failure from the persisted seed and re-shrink to the same
    // minimal counterexample.
    let replayed = run_harness("wal_mutation_smoke_replay", 0, &path);
    assert!(
        replayed.replayed,
        "failure must come from the persisted seed"
    );
    assert_eq!(replayed.seed, failure.seed);
    assert_eq!(
        replayed.minimal.0, failure.minimal.0,
        "shrinking is deterministic given the seed"
    );

    let _ = std::fs::remove_file(&path);
}

/// The minimal counterexample is a genuine standalone reproducer.
#[test]
fn shrunk_wal_counterexample_is_a_standalone_reproducer() {
    let path = std::env::temp_dir().join(format!(
        "quit-testkit-wal-standalone-{}.proptest-regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let failure = run_harness("wal_mutation_standalone", 64, &path);
    let minimal = failure.minimal.0.clone();
    assert!(
        replay_crash_ops(&minimal, &crash_spec()).is_err(),
        "minimal counterexample must fail on its own: {minimal:?}"
    );
    let _ = std::fs::remove_file(&path);
}

//! Mutation smoke check for the data-parallel search: the harness must
//! catch the off-by-one we planted.
//!
//! Built with `--features inject-search-bug`, `quit-core` drops the final
//! single-element step of `branchless_partition_point_by`, so every
//! branchless (and SIMD-fallback) intra-node search lands one slot short
//! of the true partition point. This suite asserts the layout-swept
//! differential oracle (1) detects that under the gapped + branchless
//! config, (2) shrinks the trigger to a tiny counterexample, and (3) the
//! minimal counterexample reproduces standalone.
//!
//! CI runs this as a separate cargo invocation (feature unification would
//! otherwise poison the clean differential suite, which is `cfg`'d off
//! under this feature).

#![cfg(feature = "inject-search-bug")]

use proptest::test_runner::{Config, Runner};
use quit_core::{NodeLayoutKind, SearchKind};
use quit_testkit::{replay_guarded, Op, OracleConfig, WorkloadStrategy};

/// The branchless member of the layout sweep — exactly the configuration
/// every suite now runs alongside the dense + binary paper path, so a
/// search bug that only this config exposes proves the sweep pulls its
/// weight.
fn oracle_config() -> OracleConfig {
    OracleConfig {
        leaf_capacity: 4,
        buffer_capacity: 8,
        check_every: 4,
        ..OracleConfig::default()
    }
    .with_layout(NodeLayoutKind::Gapped, SearchKind::Branchless)
}

fn run_harness(label: &str, cases: u32) -> proptest::test_runner::Failure<(Vec<Op>,)> {
    let strategy = (WorkloadStrategy::ingest_heavy(160),);
    Runner::new(label, Config::with_cases(cases))
        .run(&strategy, |(ops,)| {
            replay_guarded(ops, &oracle_config())
                .map(|_| ())
                .map_err(|d| d.to_string())
        })
        .expect_err("the injected branchless-search off-by-one must be caught")
}

#[test]
fn injected_search_bug_is_caught_and_shrunk() {
    let failure = run_harness("search_mutation_smoke", 64);
    let minimal = &failure.minimal.0;
    assert!(
        minimal.len() <= 25,
        "counterexample must shrink to ≤ 25 ops, got {}: {minimal:?}",
        minimal.len()
    );
    assert!(
        replay_guarded(minimal, &oracle_config()).is_err(),
        "minimal counterexample must fail on its own: {minimal:?}"
    );
}

/// The planted bug is localized to the branchless ladder: the binary
/// search keeps implementing the exact boundary contract, and the
/// branchless flavour visibly violates it — i.e. the smoke check above
/// fails for the right reason, not through some harness artifact.
#[test]
fn planted_bug_lives_only_in_the_branchless_ladder() {
    let keys: Vec<u64> = vec![1, 3, 3, 7, 9];
    let mut binary_diverged = false;
    let mut branchless_diverged = false;
    for probe in 0..11u64 {
        let want = keys.partition_point(|k| *k <= probe);
        if quit_core::upper_bound(SearchKind::Binary, &keys, probe) != want {
            binary_diverged = true;
        }
        if quit_core::upper_bound(SearchKind::Branchless, &keys, probe) != want {
            branchless_diverged = true;
        }
    }
    assert!(!binary_diverged, "binary search must stay correct");
    assert!(
        branchless_diverged,
        "the injected off-by-one must actually break the branchless search"
    );
}

//! Pool mutation smoke check: the harness must catch the pin bug we
//! planted.
//!
//! Built with `--features inject-pin-bug`, `quit-core`'s paged backend
//! releases the hot-node memo's standing pin one operation boundary early
//! with broken accounting: the hot frame becomes an eviction victim whose
//! dirty write-back is skipped, so the next fault resurrects the node's
//! previous on-store version — updates silently lost to an unpinned
//! eviction. This suite asserts the differential oracle, run on the paged
//! backend with a pool far smaller than the working set, (1) detects
//! that, (2) shrinks the trigger to a ≤ 25-op counterexample, and (3)
//! round-trips the failing seed through a persisted
//! `.proptest-regressions` file.
//!
//! CI runs this as a separate cargo invocation (feature unification would
//! otherwise poison the clean differential suite, which is `cfg`'d off
//! under this feature).

#![cfg(feature = "inject-pin-bug")]

use proptest::test_runner::{Config, Runner};
use quit_testkit::{replay_guarded, Op, OracleBackend, OracleConfig, WorkloadStrategy};

/// Tiny leaves, a 2-page pool, and a tight invariant cadence: with the
/// pool this far under the working set, nearly every op evicts, so the
/// hot leaf's lost write-back surfaces within a handful of inserts —
/// close enough to its cause for shrinking to reach a few ops.
fn oracle_config() -> OracleConfig {
    OracleConfig {
        leaf_capacity: 4,
        buffer_capacity: 8,
        check_every: 4,
        ..OracleConfig::default()
    }
    .with_backend(OracleBackend::Paged { pool_pages: 2 })
}

fn run_harness(
    label: &str,
    cases: u32,
    regressions: &std::path::Path,
) -> proptest::test_runner::Failure<(Vec<Op>,)> {
    let strategy = (WorkloadStrategy::ingest_heavy(160),);
    Runner::new(label, Config::with_cases(cases))
        .with_regressions_file(regressions)
        .run(&strategy, |(ops,)| {
            replay_guarded(ops, &oracle_config())
                .map(|_| ())
                .map_err(|d| d.to_string())
        })
        .expect_err("the injected pin-discipline bug must be caught")
}

#[test]
fn injected_pin_bug_is_caught_shrunk_and_persisted() {
    let path = std::env::temp_dir().join(format!(
        "quit-testkit-pool-mutation-{}.proptest-regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Fresh hunt: detect and shrink.
    let failure = run_harness("pool_mutation_smoke", 64, &path);
    assert!(!failure.replayed, "first run must find the bug itself");
    let minimal = &failure.minimal.0;
    assert!(
        minimal.len() <= 25,
        "counterexample must shrink to ≤ 25 ops, got {}: {minimal:?}",
        minimal.len()
    );
    assert!(
        minimal.len() < failure.original.0.len(),
        "shrinking must make progress ({} -> {})",
        failure.original.0.len(),
        minimal.len()
    );
    let text = std::fs::read_to_string(&path).expect("regressions file written");
    assert!(
        text.contains(&format!("cc {:016x}", failure.seed)),
        "seed persisted: {text}"
    );

    // Round trip: a replay-only runner (zero fresh cases) must reproduce
    // the same failure from the persisted seed and re-shrink to the same
    // minimal counterexample.
    let replayed = run_harness("pool_mutation_smoke_replay", 0, &path);
    assert!(
        replayed.replayed,
        "failure must come from the persisted seed"
    );
    assert_eq!(replayed.seed, failure.seed);
    assert_eq!(
        replayed.minimal.0, failure.minimal.0,
        "shrinking is deterministic given the seed"
    );

    let _ = std::fs::remove_file(&path);
}

/// The minimal counterexample still fails when replayed directly — a
/// genuine standalone reproducer — and only under pressure: the same ops
/// on the arena backend (no pool, no evictions) replay clean, pinning the
/// failure on the eviction path rather than the paged codec.
#[test]
fn shrunk_counterexample_requires_eviction_pressure() {
    let path = std::env::temp_dir().join(format!(
        "quit-testkit-pool-mutation-standalone-{}.proptest-regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let failure = run_harness("pool_mutation_standalone", 64, &path);
    let minimal = failure.minimal.0.clone();
    assert!(
        replay_guarded(&minimal, &oracle_config()).is_err(),
        "minimal counterexample must fail on its own: {minimal:?}"
    );
    let arena = OracleConfig {
        backend: OracleBackend::Arena,
        ..oracle_config()
    };
    assert!(
        replay_guarded(&minimal, &arena).is_ok(),
        "the same ops must replay clean without the buffer pool: {minimal:?}"
    );
    let _ = std::fs::remove_file(&path);
}

//! Multi-threaded differential soak for the concurrent tree (OLC on and
//! off), driven by [`quit_testkit::replay_concurrent`].
//!
//! The base seed is fixed (CI determinism) but overridable through
//! `QUIT_STRESS_SEED`, and is printed so any failure is replayable
//! bit-for-bit. Op volume scales with `QUIT_FUZZ_CASES` like the other
//! soaks: the default run already clears the 50k-op / 4-thread bar the
//! roadmap sets for this harness.

// Stepped aside under the injected-bug features, like the single-threaded
// differential suite (feature unification would poison these runs too).
#![cfg(not(any(feature = "inject-split-bug", feature = "inject-search-bug")))]

use quit_core::{NodeLayoutKind, SearchKind};
use quit_testkit::{conc_base_seed, fuzz_cases, replay_concurrent, ConcSpec};

const SOAK_SEED: u64 = 0x511D_2025;

/// Both node layouts, soaked identically: dense + binary is the paper
/// path, gapped + branchless the redesigned data-parallel one.
const LAYOUTS: [(NodeLayoutKind, SearchKind); 2] = [
    (NodeLayoutKind::Dense, SearchKind::Binary),
    (NodeLayoutKind::Gapped, SearchKind::Branchless),
];

/// ≥50k mutating ops across 4 writers with 2 validating readers (6
/// threads), optimistic lock coupling enabled, for each node layout.
#[test]
fn olc_soak_is_divergence_free() {
    let ops_per_writer = 15_000 * fuzz_cases(1);
    for (layout, kind) in LAYOUTS {
        let report = replay_concurrent(
            &ConcSpec {
                writers: 4,
                readers: 2,
                ops_per_writer,
                key_space: 4_000,
                seed: conc_base_seed(SOAK_SEED),
                leaf_capacity: 8,
                olc: true,
                ..ConcSpec::default()
            }
            .with_layout(layout, kind),
        )
        .unwrap_or_else(|d| panic!("olc soak ({layout:?}) diverged: {d}"));
        assert_eq!(report.writer_ops, 4 * ops_per_writer);
        assert!(report.reader_ops >= 2);
        assert!(report.final_len > 0);
        println!(
            "olc soak ({layout:?}): {} writer ops, {} reader ops, final len {}, {} restarts, {} fallbacks",
            report.writer_ops,
            report.reader_ops,
            report.final_len,
            report.olc_restarts,
            report.olc_fallbacks
        );
    }
}

/// The same soak with OLC disabled pins the pessimistic path and proves
/// the optimistic machinery never runs when switched off.
#[test]
fn pessimistic_soak_is_divergence_free() {
    let ops_per_writer = 15_000 * fuzz_cases(1);
    for (layout, kind) in LAYOUTS {
        let report = replay_concurrent(
            &ConcSpec {
                writers: 4,
                readers: 2,
                ops_per_writer,
                key_space: 4_000,
                seed: conc_base_seed(SOAK_SEED),
                leaf_capacity: 8,
                olc: false,
                ..ConcSpec::default()
            }
            .with_layout(layout, kind),
        )
        .unwrap_or_else(|d| panic!("pessimistic soak ({layout:?}) diverged: {d}"));
        assert_eq!(report.writer_ops, 4 * ops_per_writer);
        assert_eq!(report.olc_restarts, 0);
        assert_eq!(report.olc_fallbacks, 0);
    }
}

/// Tiny-leaf geometry maximizes splits per op — the window where torn
/// optimistic reads would live.
#[test]
fn tiny_leaf_soak_is_divergence_free() {
    for (layout, kind) in LAYOUTS {
        let report = replay_concurrent(
            &ConcSpec {
                writers: 3,
                readers: 3,
                ops_per_writer: 4_000 * fuzz_cases(1),
                key_space: 500,
                seed: conc_base_seed(SOAK_SEED ^ 0xF00D),
                leaf_capacity: 4,
                olc: true,
                ..ConcSpec::default()
            }
            .with_layout(layout, kind),
        )
        .unwrap_or_else(|d| panic!("tiny-leaf soak ({layout:?}) diverged: {d}"));
        assert!(report.final_len > 0);
    }
}

//! Crash-recovery differential suite: fuzzed crash points over durable
//! workloads, asserting exact prefix consistency at every recovery (see
//! `quit_testkit::replay_crash`).
//!
//! The headline soak covers the acceptance bar for the durability
//! subsystem: ≥ 50 random crash points over a ≥ 50k-op mixed workload,
//! each recovered image compared for exact equality against the model
//! replayed to the recovered LSN. Scale it up locally with
//! `QUIT_FUZZ_CASES`.

// The planted bugs (split bound, WAL delete framing, pool pin
// discipline) intentionally break these properties; cargo's feature
// unification applies them to the whole test run, so the clean suite
// steps aside. See tests/mutation_smoke.rs, tests/wal_mutation_smoke.rs
// and tests/pool_mutation_smoke.rs.
#![cfg(not(any(
    feature = "inject-split-bug",
    feature = "inject-wal-bug",
    feature = "inject-pin-bug"
)))]

use proptest::prelude::*;
use quit_testkit::{
    fuzz_cases, replay_crash, replay_crash_concurrent, replay_crash_ops, replay_crash_paged,
    replay_crash_paged_ops, ConcCrashSpec, CrashSpec, OpMix, PagedCrashSpec, WorkloadSpec,
    WorkloadStrategy,
};

/// ≥ 50 crash points over a ≥ 50k-op mixed workload at a fixed seed:
/// every recovered image must exactly equal the model replayed to its
/// recovered LSN, and every recovery must reach the last durable group.
#[test]
fn fixed_seed_crash_soak() {
    let cases = fuzz_cases(1);
    for case in 0..cases {
        let workload = WorkloadSpec {
            ops: 50_000,
            seed: 0xC4A5_40DE ^ (case as u64) << 8,
            mix: OpMix::mixed(),
            ..WorkloadSpec::default()
        };
        let spec = CrashSpec {
            cuts: 50,
            leaf_capacity: 32,
            commit_every: 96,
            checkpoint_at: None,
            seed: 0x50AC ^ case as u64,
        };
        let report = replay_crash(&workload, &spec).unwrap_or_else(|d| panic!("case {case}: {d}"));
        assert!(
            report.records >= 50_000,
            "mixed 50k-op workload logs ≥ 50k records"
        );
        assert_eq!(report.cuts_tested, 52);
        assert!(report.torn_cuts > 0, "random byte cuts must tear frames");
        assert_eq!(report.max_recovered, report.records as u64);
        eprintln!(
            "crash soak case {case}: {} records, {} cuts ({} torn), floor {}, recovered {}..={}",
            report.records,
            report.cuts_tested,
            report.torn_cuts,
            report.floor_lsn,
            report.min_recovered,
            report.max_recovered
        );
    }
}

/// Crash points over a checkpointed run: recovery goes through
/// `bulk_load(snapshot) + replay(tail)` and must be just as exact.
#[test]
fn crash_soak_across_a_checkpoint() {
    let workload = WorkloadSpec {
        ops: 6_000,
        seed: 0xC4A5_CCCC,
        ..WorkloadSpec::default()
    };
    let spec = CrashSpec {
        cuts: 24,
        leaf_capacity: 8,
        commit_every: 64,
        checkpoint_at: Some(3_000),
        seed: 0x50AD,
    };
    let report = replay_crash(&workload, &spec).unwrap_or_else(|d| panic!("{d}"));
    assert_eq!(report.max_recovered, report.records as u64);
}

/// The page-file variant: a durable **paged** tree (8-page pool, so the
/// working set never fits) checkpoints its page file mid-run, then the
/// combined page-file + WAL byte stream is cut at ≥ 50 offsets. Every
/// recovered image must lazily fault to *exactly* the model replayed to
/// its recovered LSN, and every torn-page trial (a byte flipped inside
/// the published snapshot) must reject the snapshot — never silently
/// apply the flipped page — yet still recover the full committed prefix
/// through the fallback chain.
#[test]
fn fixed_seed_paged_crash_soak() {
    let cases = fuzz_cases(1);
    for case in 0..cases {
        let workload = WorkloadSpec {
            ops: 6_000,
            seed: 0x9A6E_40DE ^ (case as u64) << 8,
            mix: OpMix::mixed(),
            ..WorkloadSpec::default()
        };
        let spec = PagedCrashSpec {
            cuts: 50,
            leaf_capacity: 8,
            pool_pages: 8,
            commit_every: 96,
            checkpoint_at: Some(3_000),
            torn_pages: 12,
            seed: 0x50AE ^ case as u64,
        };
        let report =
            replay_crash_paged(&workload, &spec).unwrap_or_else(|d| panic!("case {case}: {d}"));
        assert_eq!(report.cuts_tested, 52);
        assert!(report.torn_cuts > 0, "random byte cuts must tear frames");
        assert_eq!(report.max_recovered, report.records as u64);
        assert_eq!(
            report.torn_pages_tested, 12,
            "every torn-page trial must plant a flip and verify rejection"
        );
        eprintln!(
            "paged crash soak case {case}: {} records, {} cuts ({} torn, {} rejected a snapshot), \
             {} torn pages, recovered {}..={}",
            report.records,
            report.cuts_tested,
            report.torn_cuts,
            report.rejected_recoveries,
            report.torn_pages_tested,
            report.min_recovered,
            report.max_recovered
        );
    }
}

/// N writers through group commit, a live mid-run crash, per-writer
/// contiguous-prefix recovery at fuzzed cuts (fixed seed, CI soak).
#[test]
fn concurrent_group_commit_crash_soak() {
    let spec = ConcCrashSpec {
        writers: 4,
        ops_per_writer: 500,
        leaf_capacity: 16,
        cuts: 16,
        seed: 0xC4A5_C0C0,
    };
    let report = replay_crash_concurrent(&spec).unwrap_or_else(|d| panic!("{d}"));
    assert_eq!(report.writer_ops, 2_000);
    assert!(
        report.captured_floor >= 1_000,
        "capture waits for half the volume"
    );
    assert_eq!(report.cuts_tested, 18);
    eprintln!(
        "concurrent crash soak: floor {} of {}, {} cuts, final len {}",
        report.captured_floor, report.writer_ops, report.cuts_tested, report.final_len
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Freshly sampled workloads survive crash fuzzing at every cut. On
    /// failure this shrinks to a minimal op list and persists the seed
    /// next to this file.
    #[test]
    fn sampled_workloads_crash_consistently(ops in WorkloadStrategy::mixed(250)) {
        let spec = CrashSpec { cuts: 6, ..CrashSpec::default() };
        replay_crash_ops(&ops, &spec).unwrap_or_else(|d| panic!("{d}"));
    }

    /// Same, on the paged backend: freshly sampled workloads survive
    /// page-file + WAL crash fuzzing and torn-page injection at every cut.
    #[test]
    fn sampled_workloads_crash_consistently_paged(ops in WorkloadStrategy::ingest_heavy(160)) {
        let spec = PagedCrashSpec { cuts: 4, torn_pages: 2, ..PagedCrashSpec::default() };
        replay_crash_paged_ops(&ops, &spec).unwrap_or_else(|d| panic!("{d}"));
    }
}

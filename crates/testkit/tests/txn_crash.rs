//! Transactional crash differential: commit groups cut mid-WAL at
//! fuzzed byte offsets must recover to an exact committed prefix —
//! recovery may lose un-fsynced tail commits, but it must never surface
//! part of a transaction's write set.
//!
//! Disabled under every `inject-*` feature: those builds are for the
//! mutation smoke checks, which *expect* failures.

#![cfg(not(any(
    feature = "inject-split-bug",
    feature = "inject-wal-bug",
    feature = "inject-search-bug",
    feature = "inject-txn-bug"
)))]

use proptest::prelude::*;
use quit_testkit::{replay_txn_crash, TxnCrashSpec, TxnWorkloadSpec, TxnWorkloadStrategy};

/// The headline run: ≥50 distinct crash points (56 random cuts plus the
/// empty and full images) over a multi-transaction history with fsync
/// barriers raising the durability floor mid-stream.
#[test]
fn fifty_plus_cut_points_never_expose_a_partial_txn() {
    let ops = TxnWorkloadSpec {
        ops: 3_000,
        slots: 6,
        keys: 64,
        seed: 0xC4A5_0113,
    }
    .generate();
    let spec = TxnCrashSpec::default();
    let report = replay_txn_crash(&ops, &spec).unwrap_or_else(|d| panic!("{d}"));
    assert!(report.cuts_tested >= 50, "only {} cuts", report.cuts_tested);
    assert_eq!(report.cuts_tested, 2 + spec.cuts);
    assert!(report.commits > 100, "only {} commits", report.commits);
    assert_eq!(
        report.max_prefix, report.commits,
        "the full image must recover every commit"
    );
    assert!(
        report.torn_cuts > 0,
        "no cut tore the tail — the cut distribution is not exercising \
         mid-commit-group crashes"
    );
    assert!(report.floor_commits > 0, "fsync barriers never ran");
    assert!(report.min_prefix >= report.floor_commits);
}

/// Crash points landing in the snapshot-plus-tail regime: a checkpoint
/// mid-history compacts the WAL, and cuts before/after it must still
/// recover committed prefixes only.
#[test]
fn checkpointed_txn_history_recovers_prefixes() {
    let ops = TxnWorkloadSpec {
        ops: 1_500,
        slots: 4,
        keys: 48,
        seed: 0xC4A5_C217,
    }
    .generate();
    let spec = TxnCrashSpec {
        cuts: 24,
        checkpoint_at: Some(800),
        ..TxnCrashSpec::default()
    };
    let report = replay_txn_crash(&ops, &spec).unwrap_or_else(|d| panic!("{d}"));
    assert!(
        report.floor_commits > 0,
        "checkpoint never raised the floor"
    );
    assert_eq!(report.max_prefix, report.commits);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sampled transactional workloads through the crash fuzzer (a
    /// cheaper cut budget per case; any atomicity violation shrinks).
    #[test]
    fn sampled_txn_histories_recover_atomically(ops in TxnWorkloadStrategy::contended(250)) {
        let spec = TxnCrashSpec { cuts: 10, commit_every: 24, ..TxnCrashSpec::default() };
        replay_txn_crash(&ops, &spec).unwrap_or_else(|d| panic!("{d}"));
    }
}

//! Transaction mutation smoke check: the SI history checker must catch
//! the isolation bug we planted.
//!
//! Built with `--features inject-txn-bug`, `quit-durability` skips the
//! commit path's first-committer-wins validation, so two overlapping
//! transactions that wrote the same key both commit — the canonical
//! snapshot-isolation lost update. This suite asserts the history
//! checker (1) detects that from the recorded timestamps alone,
//! (2) shrinks the trigger to a tiny interleaved op sequence (≤ 25 ops)
//! still containing two commits, and (3) round-trips the failing seed
//! through a persisted `.proptest-regressions` file.
//!
//! CI runs this as a separate cargo invocation (feature unification
//! would otherwise poison the clean transaction suites, which are
//! `cfg`'d off under this feature).

#![cfg(feature = "inject-txn-bug")]

use proptest::test_runner::{Config, Runner};
use quit_testkit::{replay_txn_history, TxnOp, TxnWorkloadStrategy};

fn run_harness(
    label: &str,
    cases: u32,
    regressions: &std::path::Path,
) -> proptest::test_runner::Failure<(Vec<TxnOp>,)> {
    let strategy = (TxnWorkloadStrategy::contended(160),);
    Runner::new(label, Config::with_cases(cases))
        .with_regressions_file(regressions)
        .run(&strategy, |(ops,)| {
            replay_txn_history(ops, true)
                .map(|_| ())
                .map_err(|v| v.to_string())
        })
        .expect_err("the injected conflict-check bug must be caught")
}

#[test]
fn injected_txn_bug_is_caught_shrunk_and_persisted() {
    let path = std::env::temp_dir().join(format!(
        "quit-testkit-txn-mutation-{}.proptest-regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Fresh hunt: detect and shrink.
    let failure = run_harness("txn_mutation_smoke", 64, &path);
    assert!(!failure.replayed, "first run must find the bug itself");
    let minimal = &failure.minimal.0;
    assert!(
        minimal.len() <= 25,
        "counterexample must shrink to ≤ 25 ops, got {}: {minimal:?}",
        minimal.len()
    );
    let commits = minimal
        .iter()
        .filter(|op| matches!(op, TxnOp::Commit(_)))
        .count();
    assert!(
        commits >= 2,
        "a lost update needs two committing transactions: {minimal:?}"
    );
    let text = std::fs::read_to_string(&path).expect("regressions file written");
    assert!(
        text.contains(&format!("cc {:016x}", failure.seed)),
        "seed persisted: {text}"
    );

    // Round trip: a replay-only runner (zero fresh cases) must reproduce
    // the same failure from the persisted seed and re-shrink to the same
    // minimal counterexample.
    let replayed = run_harness("txn_mutation_smoke_replay", 0, &path);
    assert!(
        replayed.replayed,
        "failure must come from the persisted seed"
    );
    assert_eq!(replayed.seed, failure.seed);
    assert_eq!(
        replayed.minimal.0, failure.minimal.0,
        "shrinking is deterministic given the seed"
    );

    let _ = std::fs::remove_file(&path);
}

/// The minimal counterexample is a genuine standalone reproducer, and
/// the violation it reports is the lost update itself.
#[test]
fn shrunk_txn_counterexample_is_a_standalone_reproducer() {
    let path = std::env::temp_dir().join(format!(
        "quit-testkit-txn-standalone-{}.proptest-regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let failure = run_harness("txn_mutation_standalone", 64, &path);
    let minimal = failure.minimal.0.clone();
    let violation = replay_txn_history(&minimal, true)
        .expect_err("minimal counterexample must fail on its own");
    assert_eq!(
        violation.axiom, "first-committer-wins",
        "disabling conflict detection manifests as a lost update: {violation}"
    );
    let _ = std::fs::remove_file(&path);
}

/// The hand-written four-op lost-update trigger fails directly — the
/// shrinker has a floor to converge to.
#[test]
fn four_op_lost_update_fails_under_the_bug() {
    let ops = [
        TxnOp::Write(0, 1, 1),
        TxnOp::Write(1, 1, 2),
        TxnOp::Commit(0),
        TxnOp::Commit(1),
    ];
    let violation = replay_txn_history(&ops, true).expect_err("both writers commit under the bug");
    assert_eq!(violation.axiom, "first-committer-wins", "{violation}");
}

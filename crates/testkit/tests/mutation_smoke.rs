//! Mutation smoke check: the harness must catch the bug we planted.
//!
//! Built with `--features inject-split-bug`, `quit-core` leaves a stale
//! poℓe lower bound after a Fig 7a variable split, so a later key below
//! the new separator fast-inserts into the wrong leaf. This suite asserts
//! the differential oracle (1) detects that, (2) shrinks the trigger to a
//! ≤ 25-op counterexample, and (3) round-trips the failing seed through a
//! persisted `.proptest-regressions` file.
//!
//! CI runs this as a separate cargo invocation (feature unification would
//! otherwise poison the clean differential suite, which is `cfg`'d off
//! under this feature).

#![cfg(feature = "inject-split-bug")]

use proptest::test_runner::{Config, Runner};
use quit_testkit::{replay_guarded, Op, OracleConfig, WorkloadStrategy};

/// Tiny leaves + tight invariant cadence: the regime where the planted
/// bound bug both fires quickly and gets detected close to its cause,
/// which is what lets shrinking reach a handful of ops.
fn oracle_config() -> OracleConfig {
    OracleConfig {
        leaf_capacity: 4,
        buffer_capacity: 8,
        check_every: 4,
        ..OracleConfig::default()
    }
}

fn run_harness(
    label: &str,
    cases: u32,
    regressions: &std::path::Path,
) -> proptest::test_runner::Failure<(Vec<Op>,)> {
    let strategy = (WorkloadStrategy::ingest_heavy(160),);
    Runner::new(label, Config::with_cases(cases))
        .with_regressions_file(regressions)
        .run(&strategy, |(ops,)| {
            replay_guarded(ops, &oracle_config())
                .map(|_| ())
                .map_err(|d| d.to_string())
        })
        .expect_err("the injected split-bound bug must be caught")
}

#[test]
fn injected_split_bug_is_caught_shrunk_and_persisted() {
    let path = std::env::temp_dir().join(format!(
        "quit-testkit-mutation-{}.proptest-regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Fresh hunt: detect and shrink.
    let failure = run_harness("mutation_smoke", 64, &path);
    assert!(!failure.replayed, "first run must find the bug itself");
    let minimal = &failure.minimal.0;
    assert!(
        minimal.len() <= 25,
        "counterexample must shrink to ≤ 25 ops, got {}: {minimal:?}",
        minimal.len()
    );
    assert!(
        minimal.len() < failure.original.0.len(),
        "shrinking must make progress ({} -> {})",
        failure.original.0.len(),
        minimal.len()
    );
    let text = std::fs::read_to_string(&path).expect("regressions file written");
    assert!(
        text.contains(&format!("cc {:016x}", failure.seed)),
        "seed persisted: {text}"
    );

    // Round trip: a replay-only runner (zero fresh cases) must reproduce
    // the same failure from the persisted seed and re-shrink to the same
    // minimal counterexample.
    let replayed = run_harness("mutation_smoke_replay", 0, &path);
    assert!(
        replayed.replayed,
        "failure must come from the persisted seed"
    );
    assert_eq!(replayed.seed, failure.seed);
    assert_eq!(
        replayed.minimal.0, failure.minimal.0,
        "shrinking is deterministic given the seed"
    );

    let _ = std::fs::remove_file(&path);
}

/// The minimal counterexample from the planted bug still fails when
/// replayed directly — i.e. what the shrinker reports is a genuine,
/// standalone reproducer, not an artifact of runner state.
#[test]
fn shrunk_counterexample_is_a_standalone_reproducer() {
    let path = std::env::temp_dir().join(format!(
        "quit-testkit-mutation-standalone-{}.proptest-regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let failure = run_harness("mutation_standalone", 64, &path);
    let minimal = failure.minimal.0.clone();
    assert!(
        replay_guarded(&minimal, &oracle_config()).is_err(),
        "minimal counterexample must fail on its own: {minimal:?}"
    );
    // And it is insert-dominated: the bug lives in the split path.
    assert!(
        minimal
            .iter()
            .any(|op| matches!(op, Op::Insert(..) | Op::InsertBatch(_) | Op::BulkLoad(_))),
        "reproducer must contain inserts: {minimal:?}"
    );
    let _ = std::fs::remove_file(&path);
}

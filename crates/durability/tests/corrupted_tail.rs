//! Corrupted-tail recovery: every malformed WAL ending a crash can
//! plausibly leave behind must recover the clean prefix — and never panic.
//!
//! Each case fabricates a storage image (valid segments produced by the
//! real WAL, then surgically damaged and re-installed byte-for-byte) and
//! asserts recovery lands on exactly the records before the damage.

#![cfg(not(feature = "inject-wal-bug"))]

use quit_core::{FastPathMode, SortedIndex, TreeConfig};
use quit_durability::{
    bptree_builder, DurabilityConfig, Durable, MemStorage, RecoveryReport, Storage,
};
use std::sync::Arc;

fn builder() -> impl FnOnce(Vec<(u64, u64)>) -> quit_core::BpTree<u64, u64> {
    bptree_builder(FastPathMode::Pole, TreeConfig::small(16))
}

fn open(storage: Arc<MemStorage>) -> (Durable<quit_core::BpTree<u64, u64>>, RecoveryReport) {
    Durable::open(
        storage as Arc<dyn Storage>,
        DurabilityConfig::group_commit(),
        builder(),
    )
    .expect("recovery must not fail on corrupt tails")
}

/// A storage image holding `n` committed inserts `(k, k * 10)` in a single
/// segment, returned with that segment's name and raw bytes.
fn one_segment_image(n: u64) -> (Arc<MemStorage>, String, Vec<u8>) {
    let storage = Arc::new(MemStorage::new());
    let (mut d, _) = open(storage.clone());
    for k in 0..n {
        d.insert(k, k * 10);
    }
    drop(d);
    let mut segments: Vec<String> = storage
        .list()
        .unwrap()
        .into_iter()
        .filter(|f| f.starts_with("wal-"))
        .collect();
    assert_eq!(segments.len(), 1, "fits one segment: {segments:?}");
    let name = segments.pop().unwrap();
    let bytes = storage.read(&name).unwrap();
    (storage, name, bytes)
}

/// Re-installs `bytes` as the only copy of `name` on a fresh store.
fn image_with(name: &str, bytes: Vec<u8>) -> Arc<MemStorage> {
    let storage = Arc::new(MemStorage::new());
    storage.install(name, bytes);
    storage
}

/// Recovery with assertions shared by every damaged-tail case: the first
/// `intact` records survive, nothing else appears, and the report admits
/// the tear.
fn assert_recovers_prefix(storage: Arc<MemStorage>, intact: u64, torn: bool) {
    let (mut d, report) = open(storage);
    assert_eq!(report.recovered_lsn, intact);
    assert_eq!(report.torn_tail, torn);
    assert_eq!(d.len() as u64, intact);
    for k in 0..intact {
        assert_eq!(d.get(k), Some(k * 10), "record {k} must survive");
    }
    d.inner().check_invariants().unwrap();
}

#[test]
fn truncated_length_word_recovers_prefix() {
    let (_, name, bytes) = one_segment_image(20);
    // Chop the last frame down to 3 bytes: not even a complete length
    // word. The 19 whole frames before it must replay. (All 20 frames are
    // u64/u64 inserts, so the per-frame size falls out of the division.)
    let frame = (bytes.len() - 34) / 20;
    let cut = 34 + 19 * frame + 3;
    assert_recovers_prefix(image_with(&name, bytes[..cut].to_vec()), 19, true);
}

#[test]
fn bad_crc_stops_replay_cleanly() {
    let (_, name, mut bytes) = one_segment_image(20);
    // Flip one payload bit in the 16th frame: frames 1..=15 replay, the
    // corrupt one and everything after it do not.
    let frame = (bytes.len() - 34) / 20;
    bytes[34 + 15 * frame + 12] ^= 0x40;
    assert_recovers_prefix(image_with(&name, bytes), 15, true);
}

#[test]
fn torn_final_record_recovers_prefix() {
    let (_, name, bytes) = one_segment_image(20);
    // Keep the final frame's header and half its payload — the torn-write
    // shape an 8-frame-aligned disk leaves behind.
    let cut = bytes.len() - 9;
    assert_recovers_prefix(image_with(&name, bytes[..cut].to_vec()), 19, true);
}

#[test]
fn empty_and_header_only_segments_recover_empty() {
    // A zero-byte segment file (crash between create and header write).
    let (d, report) = open(image_with("wal-00000000-00000000.log", Vec::new()));
    assert_eq!(report.recovered_lsn, 0);
    assert!(d.is_empty());
    drop(d);

    // A header-only segment (crash right after rotation) is valid and
    // holds zero records — not a tear.
    let (_, name, bytes) = one_segment_image(5);
    let storage = image_with(&name, bytes[..34].to_vec());
    let (d, report) = open(storage);
    assert_eq!(report.recovered_lsn, 0);
    assert!(!report.torn_tail);
    assert!(d.is_empty());
}

#[test]
fn garbage_header_is_skipped_not_fatal() {
    let storage = image_with("wal-00000000-00000000.log", b"not a wal segment".to_vec());
    let (d, report) = open(storage);
    assert_eq!(report.recovered_lsn, 0);
    assert!(d.is_empty());
}

#[test]
fn stale_previous_generation_segment_is_skipped() {
    // Build a store where a checkpoint advanced the generation but pruning
    // is off, leaving the superseded generation-0 segments in place.
    let storage = Arc::new(MemStorage::new());
    let config = DurabilityConfig::group_commit().with_prune_on_checkpoint(false);
    let (mut d, _) = Durable::open(storage.clone() as Arc<dyn Storage>, config, builder()).unwrap();
    for k in 0..50u64 {
        d.insert(k, k * 10);
    }
    d.checkpoint::<u64, u64>().unwrap();
    for k in 50..60u64 {
        d.insert(k, k * 10);
    }
    drop(d);
    let files = storage.list().unwrap();
    assert!(
        files.iter().any(|f| f.starts_with("wal-00000000")),
        "stale generation-0 segment retained: {files:?}"
    );

    let crashed = Arc::new(storage.crash_durable_only());
    let (mut d, report) = open(crashed);
    assert_eq!(report.snapshot_entries, 50);
    assert!(report.stale_segments > 0, "{report:?}");
    assert_eq!(report.recovered_lsn, 60);
    assert_eq!(d.len(), 60, "stale records must not double-apply");
    for k in 0..60u64 {
        assert_eq!(d.get(k), Some(k * 10));
    }
}

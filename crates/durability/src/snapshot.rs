//! Sorted snapshot (checkpoint) files.
//!
//! A snapshot is the tree's full contents *in key order*, written as
//! `snap-{generation:08}.qsnp`:
//!
//! ```text
//! ┌──────────────┬─────────┬─────────┬───────────┬───────────┐
//! │ "QSNP1\n"    │ gen u64 │ lsn u64 │ count u64 │ crc u32   │  header
//! ├──────────────┴─────────┴─────────┴───────────┴───────────┤
//! │ [len u32][crc u32][ n × (key ‖ value) ]                  │  chunk …
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! Key order is the point: recovery hands the entries straight to
//! `bulk_load`, which packs leaves bottom-up in O(n) instead of n root-to-
//! leaf inserts — the same sortedness payoff the paper exploits at ingest
//! (§4.2), applied at the recovery boundary. Chunks are CRC-framed like WAL
//! records, so a torn snapshot write is detected and the *whole file* is
//! rejected (snapshots are all-or-nothing; the previous generation plus the
//! un-pruned WAL still recovers everything). On top of the CRC defence,
//! snapshots are *published atomically*: written to `….qsnp.tmp`, synced,
//! then durably renamed into place — so the final name only ever denotes a
//! complete file, and pruning the old generation can never outrun the new
//! snapshot's durability.

use crate::frame::{crc32, WalCodec};
use crate::storage::Storage;
use crate::wal::Lsn;
use std::io;

pub(crate) const SNAP_MAGIC: &[u8; 6] = b"QSNP1\n";
pub(crate) const SNAP_HEADER: usize = 6 + 8 + 8 + 8 + 4;

pub(crate) fn snap_name(generation: u64) -> String {
    format!("snap-{generation:08}.qsnp")
}

pub(crate) fn parse_snap_name(name: &str) -> Option<u64> {
    let generation = name.strip_prefix("snap-")?.strip_suffix(".qsnp")?;
    if generation.len() != 8 {
        return None;
    }
    generation.parse().ok()
}

/// Writes and fsyncs the generation-`generation` snapshot: `entries` (key
/// order, duplicates adjacent) as of `lsn`, chunked `chunk_entries` at a
/// time so torn writes are detected at chunk granularity.
///
/// The file is written under `snap-….qsnp.tmp`, synced, and only then
/// renamed to its final name (a durable, atomic publish): a crash during
/// the write leaves at worst a `.tmp` that recovery never reads and the
/// next checkpoint prunes, and the prune that follows a checkpoint can
/// never become durable ahead of the snapshot it relies on.
pub(crate) fn write_snapshot<K: WalCodec, V: WalCodec>(
    storage: &dyn Storage,
    generation: u64,
    lsn: Lsn,
    entries: &[(K, V)],
    chunk_entries: usize,
) -> io::Result<()> {
    let file = snap_name(generation);
    let tmp = format!("{file}.tmp");
    // A leftover tmp from an interrupted checkpoint must not be appended
    // onto.
    storage.remove(&tmp)?;
    let mut header = Vec::with_capacity(SNAP_HEADER);
    header.extend_from_slice(SNAP_MAGIC);
    header.extend_from_slice(&generation.to_le_bytes());
    header.extend_from_slice(&lsn.to_le_bytes());
    header.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    let crc = crc32(&header);
    header.extend_from_slice(&crc.to_le_bytes());
    storage.append(&tmp, &header)?;

    let chunk_entries = chunk_entries.max(1);
    let mut buf = Vec::with_capacity(8 + chunk_entries * (K::WIDTH + V::WIDTH));
    for chunk in entries.chunks(chunk_entries) {
        buf.clear();
        buf.extend_from_slice(&[0u8; 8]); // len + crc, patched below
        for (k, v) in chunk {
            k.encode_into(&mut buf);
            v.encode_into(&mut buf);
        }
        let len = (buf.len() - 8) as u32;
        let crc = crc32(&buf[8..]);
        buf[..4].copy_from_slice(&len.to_le_bytes());
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        storage.append(&tmp, &buf)?;
    }
    storage.sync(&tmp)?;
    storage.rename(&tmp, &file)
}

/// A decoded snapshot: `(generation, lsn, entries)`.
pub(crate) type SnapshotContents<K, V> = (u64, Lsn, Vec<(K, V)>);

/// Decodes a snapshot file. `None` on *any* malformation — short header,
/// bad magic or CRC, torn chunk, or an entry count that doesn't match —
/// because a snapshot is only usable if complete.
pub(crate) fn read_snapshot<K: WalCodec, V: WalCodec>(
    bytes: &[u8],
) -> Option<SnapshotContents<K, V>> {
    if bytes.len() < SNAP_HEADER || &bytes[..6] != SNAP_MAGIC {
        return None;
    }
    let stored = u32::from_le_bytes(bytes[SNAP_HEADER - 4..SNAP_HEADER].try_into().unwrap());
    if crc32(&bytes[..SNAP_HEADER - 4]) != stored {
        return None;
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let (generation, lsn, count) = (word(6), word(14), word(22));

    let pair = K::WIDTH + V::WIDTH;
    let mut entries = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut pos = SNAP_HEADER;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            return None;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || !len.is_multiple_of(pair) || bytes.len() - pos - 8 < len {
            return None;
        }
        let chunk = &bytes[pos + 8..pos + 8 + len];
        if crc32(chunk) != crc {
            return None;
        }
        for entry in chunk.chunks_exact(pair) {
            entries.push((
                K::decode_from(&entry[..K::WIDTH]),
                V::decode_from(&entry[K::WIDTH..]),
            ));
        }
        pos += 8 + len;
    }
    if entries.len() as u64 != count {
        return None;
    }
    Some((generation, lsn, entries))
}

/// Finds the newest fully-valid snapshot. Returns
/// `((generation, lsn, entries), rejected)` — `((0, 0, []), n)` when no valid
/// snapshot exists (`rejected` counts corrupt candidates skipped).
pub(crate) fn load_best_snapshot<K: WalCodec, V: WalCodec>(
    storage: &dyn Storage,
) -> io::Result<(SnapshotContents<K, V>, usize)> {
    let mut generations: Vec<(u64, String)> = storage
        .list()?
        .into_iter()
        .filter_map(|name| parse_snap_name(&name).map(|g| (g, name)))
        .collect();
    generations.sort();
    let mut rejected = 0;
    for (_, name) in generations.iter().rev() {
        let bytes = storage.read(name)?;
        match read_snapshot::<K, V>(&bytes) {
            Some(contents) => return Ok((contents, rejected)),
            None => rejected += 1,
        }
    }
    Ok(((0, 0, Vec::new()), rejected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn entries(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|k| (k, k * 10)).collect()
    }

    #[test]
    fn snap_names_roundtrip() {
        assert_eq!(snap_name(7), "snap-00000007.qsnp");
        assert_eq!(parse_snap_name("snap-00000007.qsnp"), Some(7));
        assert_eq!(parse_snap_name("wal-00000001-00000001.log"), None);
    }

    #[test]
    fn snapshot_roundtrip_and_every_truncation_rejected() {
        let s = MemStorage::new();
        write_snapshot(&s, 3, 500, &entries(1000), 64).unwrap();
        let bytes = s.read(&snap_name(3)).unwrap();
        let (generation, lsn, got) = read_snapshot::<u64, u64>(&bytes).unwrap();
        assert_eq!((generation, lsn), (3, 500));
        assert_eq!(got, entries(1000));

        for cut in (0..bytes.len()).step_by(97) {
            assert!(
                read_snapshot::<u64, u64>(&bytes[..cut]).is_none(),
                "truncation at {cut} must reject the snapshot"
            );
        }
    }

    #[test]
    fn best_snapshot_skips_corrupt_newest() {
        let s = MemStorage::new();
        write_snapshot(&s, 1, 100, &entries(10), 4).unwrap();
        write_snapshot(&s, 2, 200, &entries(20), 4).unwrap();
        // Corrupt generation 2 (flip a byte mid-chunk).
        let name = snap_name(2);
        let mut bytes = s.read(&name).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 1;
        s.remove(&name).unwrap();
        s.install(&name, bytes);

        let ((generation, lsn, got), rejected) = load_best_snapshot::<u64, u64>(&s).unwrap();
        assert_eq!((generation, lsn), (1, 100));
        assert_eq!(got, entries(10));
        assert_eq!(rejected, 1);
    }

    #[test]
    fn interrupted_snapshot_leaves_only_tmp_and_is_ignored() {
        let s = MemStorage::new();
        write_snapshot(&s, 1, 100, &entries(10), 4).unwrap();
        // An interrupted generation-2 write: the tmp file exists (even
        // with a fully valid payload) but was never renamed into place.
        let bytes = s.read(&snap_name(1)).unwrap();
        s.install("snap-00000002.qsnp.tmp", bytes);

        let ((generation, lsn, got), rejected) = load_best_snapshot::<u64, u64>(&s).unwrap();
        assert_eq!((generation, lsn), (1, 100));
        assert_eq!(got, entries(10));
        assert_eq!(rejected, 0, "a tmp file is not even a candidate");

        // The next checkpoint's write of generation 2 must replace the
        // leftover tmp, not append onto it.
        write_snapshot(&s, 2, 200, &entries(20), 4).unwrap();
        let ((generation, _, got), _) = load_best_snapshot::<u64, u64>(&s).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(got, entries(20));
    }

    #[test]
    fn empty_store_has_no_snapshot() {
        let s = MemStorage::new();
        let ((generation, lsn, got), rejected) = load_best_snapshot::<u64, u64>(&s).unwrap();
        assert_eq!((generation, lsn, rejected), (0, 0, 0));
        assert!(got.is_empty());
    }

    #[test]
    fn empty_tree_snapshot_is_valid() {
        let s = MemStorage::new();
        write_snapshot::<u64, u64>(&s, 1, 42, &[], 64).unwrap();
        let ((generation, lsn, got), _) = load_best_snapshot::<u64, u64>(&s).unwrap();
        assert_eq!((generation, lsn), (1, 42));
        assert!(got.is_empty());
    }
}

//! Storage backends for WAL segments and snapshot files.
//!
//! The WAL talks to a tiny append-only [`Storage`] trait so the same
//! durability logic runs against real files ([`FsStorage`]) and against an
//! in-memory backend ([`MemStorage`]) whose *crash model* the tests control
//! precisely: every appended byte is recorded in one global append order,
//! and "crashing" keeps an arbitrary prefix of that order (never less than
//! what an `fsync` made durable) — exactly the guarantee a journaling
//! filesystem gives an appended log.
//!
//! [`FaultyWriter`] is the complementary fault-injecting [`io::Write`] shim
//! for code paths that take a writer: it tears writes at a byte offset,
//! caps write sizes (short writes), and flips bits, producing the corrupt
//! byte streams the recovery path must survive.

use quit_core::{Error, Result};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Append-only file storage, as seen by the WAL: named streams that can be
/// appended, fsynced, read back whole, listed, and removed.
///
/// Implementations are shared across writer threads (`Send + Sync`); the
/// WAL serializes appends itself, so backends only need per-call interior
/// mutability, not ordering guarantees beyond "appends to one file apply in
/// call order".
pub trait Storage: Send + Sync {
    /// Appends `bytes` to `file`, creating it if absent. Not durable until
    /// [`sync`](Self::sync).
    fn append(&self, file: &str, bytes: &[u8]) -> io::Result<()>;

    /// Makes every byte appended to `file` so far durable (fsync).
    fn sync(&self, file: &str) -> io::Result<()>;

    /// Reads the full current contents of `file`.
    fn read(&self, file: &str) -> io::Result<Vec<u8>>;

    /// Lists every file name present.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Removes `file` (ok if already gone — recovery prunes idempotently).
    /// The removal is durable before this returns.
    fn remove(&self, file: &str) -> io::Result<()>;

    /// Atomically renames `from` onto `to` (replacing any existing `to`),
    /// durably — after this returns, a crash shows `to` with `from`'s
    /// contents, never a half-state. This is the publish step for
    /// snapshot files: written under a temporary name, synced, then
    /// renamed into place, so no crash can leave a partial file under a
    /// name recovery trusts.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
}

#[derive(Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a crash (advanced by `sync`).
    durable: usize,
}

#[derive(Default)]
struct MemInner {
    files: BTreeMap<String, MemFile>,
    /// Global append order: `(file, len)` per append call. A crash keeps a
    /// prefix of this sequence (plus everything under each durable floor).
    order: Vec<(String, usize)>,
}

/// In-memory [`Storage`] with an explicit crash model, for recovery tests.
///
/// Appends land in per-file buffers *and* a global append-order journal.
/// [`crash`](MemStorage::crash) rolls the world back to "the first `keep`
/// appended bytes reached the disk, plus whatever `sync` already made
/// durable" — the byte-prefix crash model of the ISSUE's differential
/// fuzzer. `keep` ranges over [`total_appended`](MemStorage::total_appended)
/// bytes, so a fuzzer can bisect crash points without knowing file layout.
#[derive(Default)]
pub struct MemStorage {
    inner: Mutex<MemInner>,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes ever appended (the crash-point domain).
    pub fn total_appended(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.order.iter().map(|(_, n)| n).sum()
    }

    /// Total bytes currently guaranteed durable across all files.
    pub fn durable_bytes(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.files.values().map(|f| f.durable).sum()
    }

    /// A post-crash copy of this store: for each file, the surviving length
    /// is `max(durable, bytes of that file among the first `keep` appended
    /// bytes)`. `keep == total_appended()` reproduces everything;
    /// `keep == 0` keeps only what `sync` promised.
    pub fn crash(&self, keep: usize) -> MemStorage {
        let inner = self.inner.lock().unwrap();
        let mut kept: BTreeMap<&str, usize> = BTreeMap::new();
        let mut budget = keep;
        for (name, len) in &inner.order {
            let take = (*len).min(budget);
            *kept.entry(name.as_str()).or_insert(0) += take;
            budget -= take;
            if budget == 0 {
                break;
            }
        }
        let mut files = BTreeMap::new();
        let mut order = Vec::new();
        for (name, f) in &inner.files {
            let survive = f.durable.max(kept.get(name.as_str()).copied().unwrap_or(0));
            files.insert(
                name.clone(),
                MemFile {
                    data: f.data[..survive.min(f.data.len())].to_vec(),
                    durable: survive.min(f.data.len()),
                },
            );
            order.push((name.clone(), survive.min(f.data.len())));
        }
        MemStorage {
            inner: Mutex::new(MemInner { files, order }),
        }
    }

    /// A post-crash copy keeping only fsync-guaranteed bytes (the harshest
    /// legal crash).
    pub fn crash_durable_only(&self) -> MemStorage {
        self.crash(0)
    }

    /// Installs a file with explicit raw contents (for corrupted-tail
    /// tests that fabricate segments byte-by-byte). Contents count as
    /// durable.
    pub fn install(&self, file: &str, bytes: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        let len = bytes.len();
        inner.files.insert(
            file.to_string(),
            MemFile {
                data: bytes,
                durable: len,
            },
        );
        inner.order.push((file.to_string(), len));
    }
}

impl Storage for MemStorage {
    fn append(&self, file: &str, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .files
            .entry(file.to_string())
            .or_default()
            .data
            .extend_from_slice(bytes);
        inner.order.push((file.to_string(), bytes.len()));
        Ok(())
    }

    fn sync(&self, file: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(f) = inner.files.get_mut(file) {
            f.durable = f.data.len();
        }
        Ok(())
    }

    fn read(&self, file: &str) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock().unwrap();
        inner
            .files
            .get(file)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, file.to_string()))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let inner = self.inner.lock().unwrap();
        Ok(inner.files.keys().cloned().collect())
    }

    fn remove(&self, file: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.files.remove(file);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let f = inner
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, from.to_string()))?;
        // Drop the replaced target's append history so crash accounting
        // tracks only the surviving contents, then re-point the source's
        // history at the new name. The rename itself is modelled as
        // atomic and durable — the contract `FsStorage` buys with its
        // directory fsync.
        inner.order.retain(|(n, _)| n != to);
        for entry in &mut inner.order {
            if entry.0 == from {
                entry.0 = to.to_string();
            }
        }
        inner.files.insert(to.to_string(), f);
        Ok(())
    }
}

/// Real-file [`Storage`] rooted at a directory. Appends keep a cached
/// `O_APPEND` handle per file; [`sync`](Storage::sync) maps to
/// `fdatasync`. Directory mutations — creating a file, removing one,
/// renaming one into place — are followed by an fsync of the directory
/// itself: `fdatasync` on a file only covers its *contents*, and without
/// the directory fsync a freshly created segment or snapshot (or a
/// prune's unlinks) can reorder around it across a crash, losing
/// committed records.
pub struct FsStorage {
    dir: PathBuf,
    handles: Mutex<BTreeMap<String, File>>,
}

impl FsStorage {
    /// Opens (creating if needed) the storage directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FsStorage {
            dir,
            handles: Mutex::new(BTreeMap::new()),
        })
    }

    /// Opens (creating if needed) one storage directory per shard under
    /// `root`: `root/shard-0000/`, `root/shard-0001/`, …
    ///
    /// This is the multi-WAL-directory layout `quit-service` runs on: each
    /// shard owns its own `Durable` wrapper and therefore its own segment
    /// and snapshot namespace, so shards recover independently and their
    /// group-commit leaders batch fsyncs per shard instead of contending
    /// on one log.
    pub fn open_sharded(root: impl Into<PathBuf>, shards: usize) -> Result<Vec<Arc<FsStorage>>> {
        if shards == 0 {
            return Err(Error::config("shard count must be at least 1"));
        }
        let root = root.into();
        (0..shards)
            .map(|i| {
                Ok(Arc::new(FsStorage::open(
                    root.join(format!("shard-{i:04}")),
                )?))
            })
            .collect()
    }

    /// The directory this store writes under.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Fsyncs the storage directory, making file creations, removals and
    /// renames durable.
    fn sync_dir(&self) -> io::Result<()> {
        File::open(&self.dir)?.sync_all()
    }

    fn with_handle<R>(
        &self,
        file: &str,
        f: impl FnOnce(&mut File) -> io::Result<R>,
    ) -> io::Result<R> {
        let mut handles = self.handles.lock().unwrap();
        if !handles.contains_key(file) {
            let path = self.dir.join(file);
            let existed = path.exists();
            let h = OpenOptions::new().create(true).append(true).open(&path)?;
            if !existed {
                // The new file's directory entry must be durable before
                // any fdatasync on the file can promise its contents
                // survive a crash.
                self.sync_dir()?;
            }
            handles.insert(file.to_string(), h);
        }
        f(handles.get_mut(file).unwrap())
    }
}

impl Storage for FsStorage {
    fn append(&self, file: &str, bytes: &[u8]) -> io::Result<()> {
        self.with_handle(file, |h| h.write_all(bytes))
    }

    fn sync(&self, file: &str) -> io::Result<()> {
        self.with_handle(file, |h| h.sync_data())
    }

    fn read(&self, file: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.dir.join(file))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove(&self, file: &str) -> io::Result<()> {
        self.handles.lock().unwrap().remove(file);
        match std::fs::remove_file(self.dir.join(file)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
            // The unlink must not be able to become durable *before* the
            // things it supersedes (e.g. a checkpoint's new snapshot) —
            // callers order their operations, so each directory mutation
            // is made durable in program order.
            Ok(()) => self.sync_dir(),
        }
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut handles = self.handles.lock().unwrap();
        handles.remove(from);
        handles.remove(to);
        drop(handles);
        std::fs::rename(self.dir.join(from), self.dir.join(to))?;
        self.sync_dir()
    }
}

/// A fault-injecting [`io::Write`] wrapper: tears the stream at a byte
/// offset (bytes past it vanish while the writer believes they landed —
/// a crash before the data reached the platter), caps individual write
/// sizes (short writes, forcing callers to handle partial `write`
/// returns), and flips one bit at a chosen offset (media corruption).
pub struct FaultyWriter<W: Write> {
    inner: W,
    written: u64,
    /// Bytes at global offset >= this silently vanish.
    tear_at: Option<u64>,
    /// Max bytes accepted per `write` call.
    short_cap: Option<usize>,
    /// Global byte offset whose lowest bit gets flipped.
    flip_at: Option<u64>,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner` with no faults armed.
    pub fn new(inner: W) -> Self {
        FaultyWriter {
            inner,
            written: 0,
            tear_at: None,
            short_cap: None,
            flip_at: None,
        }
    }

    /// Arms a torn write: everything from global byte offset `at` on is
    /// dropped while reported as written.
    pub fn tear_at(mut self, at: u64) -> Self {
        self.tear_at = Some(at);
        self
    }

    /// Arms short writes: each `write` call accepts at most `cap` bytes.
    pub fn short_writes(mut self, cap: usize) -> Self {
        assert!(cap > 0, "short-write cap must be positive");
        self.short_cap = Some(cap);
        self
    }

    /// Arms a single bit flip at global byte offset `at`.
    pub fn flip_bit_at(mut self, at: u64) -> Self {
        self.flip_at = Some(at);
        self
    }

    /// Total bytes the *caller* believes were written (faults included).
    pub fn bytes_accepted(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let take = self.short_cap.map_or(buf.len(), |c| buf.len().min(c));
        let buf = &buf[..take];
        // How much of this call lies before the tear point?
        let survive = match self.tear_at {
            Some(t) if self.written >= t => 0,
            Some(t) => ((t - self.written) as usize).min(buf.len()),
            None => buf.len(),
        };
        if survive > 0 {
            match self.flip_at {
                Some(f) if (self.written..self.written + survive as u64).contains(&f) => {
                    let mut corrupted = buf[..survive].to_vec();
                    corrupted[(f - self.written) as usize] ^= 1;
                    self.inner.write_all(&corrupted)?;
                }
                _ => self.inner.write_all(&buf[..survive])?,
            }
        }
        // Torn bytes are *accepted* (the caller sees success) but never
        // reach the inner writer — that is the crash.
        self.written += take as u64;
        Ok(take)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_crash_respects_durable_floor() {
        let s = MemStorage::new();
        s.append("a", b"hello").unwrap();
        s.sync("a").unwrap();
        s.append("a", b"world").unwrap();
        s.append("b", b"xyz").unwrap();
        assert_eq!(s.total_appended(), 13);
        assert_eq!(s.durable_bytes(), 5);

        // Harshest crash: only the fsynced prefix of `a` survives.
        let c = s.crash_durable_only();
        assert_eq!(c.read("a").unwrap(), b"hello");
        assert_eq!(c.read("b").unwrap(), b"");

        // Keep 8 appended bytes: hello + wor, nothing of b.
        let c = s.crash(8);
        assert_eq!(c.read("a").unwrap(), b"hellowor");
        assert_eq!(c.read("b").unwrap(), b"");

        // Keep everything.
        let c = s.crash(usize::MAX);
        assert_eq!(c.read("a").unwrap(), b"helloworld");
        assert_eq!(c.read("b").unwrap(), b"xyz");
    }

    #[test]
    fn mem_storage_basic_ops() {
        let s = MemStorage::new();
        s.append("f", b"abc").unwrap();
        assert_eq!(s.list().unwrap(), vec!["f".to_string()]);
        assert!(s.read("missing").is_err());
        s.remove("f").unwrap();
        assert!(s.list().unwrap().is_empty());
        s.remove("f").unwrap(); // idempotent
    }

    #[test]
    fn mem_storage_rename_replaces_and_keeps_crash_accounting() {
        let s = MemStorage::new();
        s.append("old", b"stale").unwrap();
        s.sync("old").unwrap();
        s.append("f.tmp", b"payload").unwrap();
        s.sync("f.tmp").unwrap();
        s.rename("f.tmp", "old").unwrap();
        assert_eq!(s.list().unwrap(), vec!["old".to_string()]);
        assert_eq!(s.read("old").unwrap(), b"payload");
        assert!(s.rename("missing", "x").is_err());

        // Post-crash, the renamed contents survive under the new name and
        // the replaced file's bytes are gone from the accounting.
        let c = s.crash_durable_only();
        assert_eq!(c.read("old").unwrap(), b"payload");
        assert_eq!(c.total_appended(), b"payload".len());
    }

    #[test]
    fn faulty_writer_tears_shortens_and_flips() {
        // Tear at byte 4: caller "writes" 10 bytes, disk holds 4.
        let mut w = FaultyWriter::new(Vec::new()).tear_at(4);
        w.write_all(b"0123456789").unwrap();
        assert_eq!(w.bytes_accepted(), 10);
        assert_eq!(w.into_inner(), b"0123");

        // Short writes: each call lands at most 3 bytes; write_all loops.
        let mut w = FaultyWriter::new(Vec::new()).short_writes(3);
        assert_eq!(w.write(b"abcdef").unwrap(), 3);
        w.write_all(b"def").unwrap();
        assert_eq!(w.into_inner(), b"abcdef");

        // Bit flip at offset 1.
        let mut w = FaultyWriter::new(Vec::new()).flip_bit_at(1);
        w.write_all(&[0u8, 0, 0]).unwrap();
        assert_eq!(w.into_inner(), vec![0u8, 1, 0]);
    }

    #[test]
    fn fs_storage_roundtrip() {
        let dir = std::env::temp_dir().join(format!("quit-dur-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = FsStorage::open(&dir).unwrap();
        s.append("wal-1.log", b"abc").unwrap();
        s.append("wal-1.log", b"def").unwrap();
        s.sync("wal-1.log").unwrap();
        assert_eq!(s.read("wal-1.log").unwrap(), b"abcdef");
        assert_eq!(s.list().unwrap(), vec!["wal-1.log".to_string()]);
        s.remove("wal-1.log").unwrap();
        s.remove("wal-1.log").unwrap(); // idempotent
        assert!(s.list().unwrap().is_empty());

        s.append("snap.tmp", b"contents").unwrap();
        s.sync("snap.tmp").unwrap();
        s.rename("snap.tmp", "snap.qsnp").unwrap();
        assert_eq!(s.list().unwrap(), vec!["snap.qsnp".to_string()]);
        assert_eq!(s.read("snap.qsnp").unwrap(), b"contents");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Paged snapshot (checkpoint) files: the page-file flavour of
//! `crate::snapshot`.
//!
//! Where a sorted snapshot (`snap-….qsnp`) stores *entries* and recovery
//! rebuilds the tree with `bulk_load`, a paged snapshot
//! (`psnap-{generation:08}.qpsf`) stores the tree's *pages* — the
//! `quit_core::BpTree::to_page_image` format wrapped in a small
//! generation/LSN header:
//!
//! ```text
//! ┌──────────────┬─────────┬─────────┬─────────────┬─────────┐
//! │ "QPSN1\n"    │ gen u64 │ lsn u64 │ img_len u64 │ crc u32 │  header
//! ├──────────────┴─────────┴─────────┴─────────────┴─────────┤
//! │ tree page image ("QPTB1\n" meta + "QPGA1\n" page file)   │
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! The payoff is *lazy recovery*: reopening validates integrity eagerly
//! (this header's CRC, the image's metadata CRC, and every page CRC, in
//! one byte sweep) but decodes no nodes — the root and spine fault in
//! from the buffer pool on first use, so recovery cost stops scaling with
//! tree size. The publish discipline is identical to sorted snapshots:
//! written to `….tmp`, synced, then durably renamed, so the final name
//! only ever denotes a complete file, and any malformation — torn page,
//! flipped byte, truncation — rejects the whole candidate and recovery
//! falls back to the previous generation (or a sorted snapshot) plus the
//! un-pruned WAL.

use crate::frame::crc32;
use crate::storage::Storage;
use crate::wal::Lsn;
use std::io;

pub(crate) const PSNAP_MAGIC: &[u8; 6] = b"QPSN1\n";
pub(crate) const PSNAP_HEADER: usize = 6 + 8 + 8 + 8 + 4;

pub(crate) fn psnap_name(generation: u64) -> String {
    format!("psnap-{generation:08}.qpsf")
}

pub(crate) fn parse_psnap_name(name: &str) -> Option<u64> {
    let generation = name.strip_prefix("psnap-")?.strip_suffix(".qpsf")?;
    if generation.len() != 8 {
        return None;
    }
    generation.parse().ok()
}

/// Writes and fsyncs the generation-`generation` paged snapshot: `image`
/// (a [`quit_core::BpTree::to_page_image`] byte image) as of `lsn`,
/// published atomically via tmp + sync + rename like its sorted sibling.
pub(crate) fn write_paged_snapshot(
    storage: &dyn Storage,
    generation: u64,
    lsn: Lsn,
    image: &[u8],
) -> io::Result<()> {
    let file = psnap_name(generation);
    let tmp = format!("{file}.tmp");
    // A leftover tmp from an interrupted checkpoint must not be appended
    // onto.
    storage.remove(&tmp)?;
    let mut header = Vec::with_capacity(PSNAP_HEADER);
    header.extend_from_slice(PSNAP_MAGIC);
    header.extend_from_slice(&generation.to_le_bytes());
    header.extend_from_slice(&lsn.to_le_bytes());
    header.extend_from_slice(&(image.len() as u64).to_le_bytes());
    let crc = crc32(&header);
    header.extend_from_slice(&crc.to_le_bytes());
    storage.append(&tmp, &header)?;
    storage.append(&tmp, image)?;
    storage.sync(&tmp)?;
    storage.rename(&tmp, &file)
}

/// Splits a paged snapshot file into `(generation, lsn, image)`. `None`
/// on any header malformation or an image length that doesn't match the
/// file — the image's *own* integrity (metadata CRC, per-page CRCs) is
/// the caller's next validation step via `BpTree::from_page_image`.
pub(crate) fn read_paged_snapshot(bytes: &[u8]) -> Option<(u64, Lsn, &[u8])> {
    if bytes.len() < PSNAP_HEADER || &bytes[..6] != PSNAP_MAGIC {
        return None;
    }
    let stored = u32::from_le_bytes(bytes[PSNAP_HEADER - 4..PSNAP_HEADER].try_into().unwrap());
    if crc32(&bytes[..PSNAP_HEADER - 4]) != stored {
        return None;
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let (generation, lsn, img_len) = (word(6), word(14), word(22));
    let image = &bytes[PSNAP_HEADER..];
    if image.len() as u64 != img_len {
        return None;
    }
    Some((generation, lsn, image))
}

/// Paged-snapshot candidates present on `storage`, newest generation
/// first (`.tmp` leftovers are never candidates).
pub(crate) fn paged_snapshot_candidates(storage: &dyn Storage) -> io::Result<Vec<(u64, String)>> {
    let mut generations: Vec<(u64, String)> = storage
        .list()?
        .into_iter()
        .filter_map(|name| parse_psnap_name(&name).map(|g| (g, name)))
        .collect();
    generations.sort();
    generations.reverse();
    Ok(generations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    #[test]
    fn psnap_names_roundtrip() {
        assert_eq!(psnap_name(7), "psnap-00000007.qpsf");
        assert_eq!(parse_psnap_name("psnap-00000007.qpsf"), Some(7));
        assert_eq!(parse_psnap_name("snap-00000007.qsnp"), None);
        assert_eq!(parse_psnap_name("psnap-00000007.qpsf.tmp"), None);
    }

    #[test]
    fn header_roundtrip_and_malformations_rejected() {
        let s = MemStorage::new();
        let image = vec![0xA5u8; 300];
        write_paged_snapshot(&s, 4, 999, &image).unwrap();
        let bytes = s.read(&psnap_name(4)).unwrap();
        let (generation, lsn, got) = read_paged_snapshot(&bytes).unwrap();
        assert_eq!((generation, lsn), (4, 999));
        assert_eq!(got, &image[..]);

        // Every truncation and any header byte flip rejects the file.
        for cut in (0..bytes.len()).step_by(33) {
            assert!(read_paged_snapshot(&bytes[..cut]).is_none(), "cut {cut}");
        }
        for off in 0..PSNAP_HEADER {
            let mut bad = bytes.clone();
            bad[off] ^= 0x40;
            assert!(read_paged_snapshot(&bad).is_none(), "flip at {off}");
        }
    }

    #[test]
    fn candidates_sorted_newest_first_and_ignore_tmp() {
        let s = MemStorage::new();
        write_paged_snapshot(&s, 1, 10, &[1]).unwrap();
        write_paged_snapshot(&s, 3, 30, &[3]).unwrap();
        write_paged_snapshot(&s, 2, 20, &[2]).unwrap();
        s.install("psnap-00000009.qpsf.tmp", vec![9]);
        let got = paged_snapshot_candidates(&s).unwrap();
        let gens: Vec<u64> = got.iter().map(|(g, _)| *g).collect();
        assert_eq!(gens, [3, 2, 1]);
    }
}

//! The segmented write-ahead log: LSN assignment, buffered appends,
//! group-commit fsync batching, segment rotation, and the recovery scan.
//!
//! ## Segment layout
//!
//! Segments are named `wal-{generation:08}-{seq:08}.log` and start with a
//! 34-byte header:
//!
//! ```text
//! ┌──────────────┬─────────┬─────────┬───────────────┬───────────┐
//! │ "QWAL1\n"    │ gen u64 │ seq u64 │ start_lsn u64 │ crc u32   │
//! └──────────────┴─────────┴─────────┴───────────────┴───────────┘
//! ```
//!
//! followed by CRC32 frames (see [`crate::frame`]). `generation` bumps on
//! every checkpoint, so stale segments from before a snapshot are
//! recognizable by name *and* by header even if pruning was interrupted.
//! `start_lsn` is the LSN of the segment's first record; recovery uses it
//! to decide whether a later segment legitimately continues the log after
//! a torn tail (a fresh segment opened by a recovered process) or is
//! unreachable garbage.
//!
//! ## Group commit
//!
//! Writers append under one mutex (LSN assignment + frame encoding +
//! buffered write), then [`Wal::commit`] waits until their LSN is durable.
//! The first committer to find no leader running becomes the leader: it
//! flushes the buffer, *releases the lock*, issues one fsync for everything
//! flushed so far, then advances the durable watermark and wakes the group.
//! Writers that arrive mid-fsync enqueue and are picked up by the next
//! leader — one fsync per group, not per record, which is what lets the
//! durable ingest path keep up with `ConcurrentTree`'s OLC write path.
//!
//! ## Failure poisoning
//!
//! A storage `append` that fails may have landed a partial copy of its
//! frames; a storage `fsync` that fails may have silently dropped dirty
//! pages (retrying an fsync after a failure can succeed without the data
//! being durable). Either way the segment can no longer be trusted to
//! carry a contiguous, durable LSN chain, so the WAL **poisons** itself:
//! the pending frames are restored (nothing is silently dropped, so the
//! LSN sequence never gains a gap), and every subsequent `append`,
//! `flush` or `commit` — from *any* thread — fails with an error instead
//! of acking records that recovery could never replay.

use crate::frame::{decode_frame, encode_frame, FrameStep, WalCodec};
use crate::storage::Storage;
use crate::WalOp;
use quit_core::{Error, MetricsRegistry, Result};
use std::io;
use std::sync::{Arc, Condvar, Mutex};

/// Log sequence number: 1-based, dense, strictly increasing. 0 means
/// "nothing logged yet".
pub type Lsn = u64;

pub(crate) const SEG_MAGIC: &[u8; 6] = b"QWAL1\n";
pub(crate) const SEG_HEADER: usize = 6 + 8 + 8 + 8 + 4;

pub(crate) fn seg_name(generation: u64, seq: u64) -> String {
    format!("wal-{generation:08}-{seq:08}.log")
}

pub(crate) fn parse_seg_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    let (generation, seq) = rest.split_once('-')?;
    if generation.len() != 8 || seq.len() != 8 {
        return None;
    }
    Some((generation.parse().ok()?, seq.parse().ok()?))
}

pub(crate) fn encode_seg_header(generation: u64, seq: u64, start_lsn: Lsn) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEG_HEADER);
    out.extend_from_slice(SEG_MAGIC);
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&start_lsn.to_le_bytes());
    let crc = crate::frame::crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// `(generation, seq, start_lsn)` if the header is intact.
pub(crate) fn decode_seg_header(bytes: &[u8]) -> Option<(u64, u64, Lsn)> {
    if bytes.len() < SEG_HEADER || &bytes[..6] != SEG_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[SEG_HEADER - 4..SEG_HEADER].try_into().unwrap());
    if crate::frame::crc32(&bytes[..SEG_HEADER - 4]) != crc {
        return None;
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    Some((word(6), word(14), word(22)))
}

/// WAL sizing knobs (buffering and rotation thresholds).
#[derive(Clone, Copy, Debug)]
pub struct WalTuning {
    /// Rotate to a new segment once the current one exceeds this many bytes.
    pub segment_bytes: usize,
    /// Flush the append buffer to storage once it exceeds this many bytes
    /// (0 = write-through). Buffered bytes are lost on crash until a flush;
    /// flushed-but-unsynced bytes are lost until an fsync.
    pub buffer_bytes: usize,
}

impl Default for WalTuning {
    fn default() -> Self {
        WalTuning {
            segment_bytes: 8 << 20,
            buffer_bytes: 64 << 10,
        }
    }
}

struct WalState {
    /// Encoded frames not yet handed to storage.
    pending: Vec<u8>,
    /// Records inside `pending`.
    pending_records: u64,
    /// Next LSN to assign.
    next_lsn: Lsn,
    /// Highest LSN whose frame reached storage (flushed, maybe unsynced).
    written_lsn: Lsn,
    /// Highest LSN guaranteed durable (covered by an fsync).
    durable_lsn: Lsn,
    /// Records flushed to storage but not yet covered by an fsync.
    unsynced_records: u64,
    /// True while some thread is the group-commit leader (fsyncing outside
    /// the lock).
    leader_active: bool,
    generation: u64,
    seg_seq: u64,
    /// Whether the current `(generation, seg_seq)` segment has its header
    /// written.
    seg_open: bool,
    /// Bytes written to the current segment.
    seg_bytes: usize,
    /// Set after a storage append/fsync failure: the log can no longer
    /// prove a contiguous durable LSN chain, so every further operation
    /// fails (see the module docs).
    poisoned: bool,
}

fn poison_err() -> Error {
    Error::Poisoned
}

/// The segmented, group-committing write-ahead log.
///
/// All methods take `&self`; internal state lives behind one mutex, and
/// fsyncs happen outside it (group commit). Construction goes through
/// [`crate::Durable::open`], which recovers existing state first.
pub struct Wal {
    storage: Arc<dyn Storage>,
    tuning: WalTuning,
    state: Mutex<WalState>,
    durable_cv: Condvar,
    metrics: MetricsRegistry,
}

impl Wal {
    /// A WAL resuming at `next_lsn` on `generation`, writing its next
    /// segment as `seq` (no segment is opened until the first append).
    pub(crate) fn resume(
        storage: Arc<dyn Storage>,
        tuning: WalTuning,
        generation: u64,
        seq: u64,
        next_lsn: Lsn,
    ) -> Self {
        Wal {
            storage,
            tuning,
            state: Mutex::new(WalState {
                pending: Vec::new(),
                pending_records: 0,
                next_lsn,
                written_lsn: next_lsn - 1,
                durable_lsn: next_lsn - 1,
                unsynced_records: 0,
                leader_active: false,
                generation,
                seg_seq: seq,
                seg_open: false,
                seg_bytes: 0,
                poisoned: false,
            }),
            durable_cv: Condvar::new(),
            metrics: MetricsRegistry::default(),
        }
    }

    /// WAL-side metrics (`wal_appends`, `wal_fsyncs`, group-size and
    /// recovery histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Highest LSN assigned so far (0 before the first append).
    pub fn last_lsn(&self) -> Lsn {
        self.state.lock().unwrap().next_lsn - 1
    }

    /// Highest LSN guaranteed durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.state.lock().unwrap().durable_lsn
    }

    /// Appends `ops` as consecutive LSNs into the buffer, returning the
    /// last LSN assigned. Does *not* make them durable — pair with
    /// [`commit`](Self::commit) (group commit) or rely on buffer flushes
    /// (`Buffered` level). Empty `ops` returns the current last LSN.
    pub fn append<K: WalCodec, V: WalCodec>(&self, ops: &[WalOp<K, V>]) -> Result<Lsn> {
        let mut st = self.state.lock().unwrap();
        if st.poisoned {
            return Err(poison_err());
        }
        for op in ops {
            let lsn = st.next_lsn;
            st.next_lsn += 1;
            encode_frame(lsn, op, &mut st.pending);
            st.pending_records += 1;
        }
        self.metrics
            .counters
            .wal_appends
            .add_shared(ops.len() as u64);
        if st.pending.len() >= self.tuning.buffer_bytes.max(1) {
            self.flush_locked(&mut st)?;
        }
        Ok(st.next_lsn - 1)
    }

    /// Pushes buffered frames to storage (still not fsynced).
    pub fn flush(&self) -> Result<()> {
        let mut st = self.state.lock().unwrap();
        self.flush_locked(&mut st)
    }

    /// Blocks until `lsn` is durable, becoming the group-commit leader if
    /// none is running: flush, one fsync for the whole group, wake everyone.
    pub fn commit(&self, lsn: Lsn) -> Result<()> {
        let mut st = self.state.lock().unwrap();
        while st.durable_lsn < lsn {
            if st.poisoned {
                // Without this, waiters would park forever: a poisoned
                // log's durable watermark never advances again.
                return Err(poison_err());
            }
            if st.leader_active {
                // A leader's fsync is in flight; it (or the next leader)
                // will cover us. Wait for the watermark to move.
                st = self.durable_cv.wait(st).unwrap();
                continue;
            }
            st.leader_active = true;
            let flushed = self.flush_locked(&mut st);
            let target = st.written_lsn;
            let group = st.unsynced_records;
            let seg = seg_name(st.generation, st.seg_seq);
            let seg_open = st.seg_open;
            drop(st);

            // One fsync for every record flushed so far — the group.
            let synced = flushed.and_then(|()| {
                if seg_open {
                    self.storage.sync(&seg).map_err(Error::from)
                } else {
                    Ok(())
                }
            });

            let mut st2 = self.state.lock().unwrap();
            st2.leader_active = false;
            if synced.is_ok() {
                if target > st2.durable_lsn {
                    st2.durable_lsn = target;
                }
                st2.unsynced_records = st2.unsynced_records.saturating_sub(group);
                self.metrics.counters.wal_fsyncs.bump_shared();
                if group > 0 {
                    // Log2 histogram of records per fsync (not a latency).
                    self.metrics.group_commit_size.record_ns(group);
                }
            } else {
                // A failed fsync may have dropped dirty pages without
                // making them durable; retrying can "succeed" while the
                // data is gone. Poison so no writer ever acks past this.
                st2.poisoned = true;
            }
            self.durable_cv.notify_all();
            synced?;
            st = st2;
        }
        Ok(())
    }

    /// Flushes pending frames into the active segment, opening/rotating
    /// segments as needed. Frames never span segments: rotation happens
    /// between flushes, and one flush lands in one segment.
    fn flush_locked(&self, st: &mut WalState) -> Result<()> {
        if st.poisoned {
            return Err(poison_err());
        }
        if st.pending.is_empty() {
            return Ok(());
        }
        // Rotate a full segment before this batch (sync it first so the
        // durable watermark can never point past an unsynced old segment).
        if st.seg_open && st.seg_bytes >= self.tuning.segment_bytes {
            if let Err(e) = self.storage.sync(&seg_name(st.generation, st.seg_seq)) {
                st.poisoned = true;
                return Err(e.into());
            }
            st.seg_seq += 1;
            st.seg_open = false;
            st.seg_bytes = 0;
        }
        let seg = seg_name(st.generation, st.seg_seq);
        if !st.seg_open {
            let header = encode_seg_header(st.generation, st.seg_seq, st.written_lsn + 1);
            if let Err(e) = self.storage.append(&seg, &header) {
                // The segment may hold a partial header; nothing from
                // `pending` was consumed, but the file is no longer
                // trustworthy — poison rather than write frames behind a
                // torn header that recovery would discard.
                st.poisoned = true;
                return Err(e.into());
            }
            st.seg_open = true;
            st.seg_bytes = header.len();
        }
        let pending = std::mem::take(&mut st.pending);
        if let Err(e) = self.storage.append(&seg, &pending) {
            // The segment may now hold a partial copy of these frames.
            // Restore them so the assigned LSNs are never dropped (no
            // gap), and poison: re-appending after partial garbage would
            // put the frames behind a torn tail where recovery's
            // same-segment scan can never reach them.
            st.pending = pending;
            st.poisoned = true;
            return Err(e.into());
        }
        st.seg_bytes += pending.len();
        st.written_lsn = st.next_lsn - 1;
        st.unsynced_records += st.pending_records;
        st.pending_records = 0;
        Ok(())
    }

    /// Checkpoint: makes the log durable, writes `entries` (sorted) as the
    /// generation-`g+1` snapshot at the current last LSN, switches segment
    /// writing to generation `g+1`, and (optionally) prunes everything the
    /// snapshot supersedes. Caller must pass the tree's full contents in
    /// key order and must be externally synchronized (no concurrent
    /// appends) — `Durable::checkpoint` takes `&mut self` for exactly this.
    pub(crate) fn checkpoint<K: WalCodec, V: WalCodec>(
        &self,
        entries: &[(K, V)],
        chunk_entries: usize,
        prune: bool,
    ) -> Result<()> {
        self.checkpoint_with(prune, |storage, generation, lsn| {
            crate::snapshot::write_snapshot(storage, generation, lsn, entries, chunk_entries)
                .map_err(Into::into)
        })
    }

    /// The checkpoint protocol with the snapshot format abstracted out:
    /// makes the log durable, calls `write_snapshot(storage, g+1, lsn)` to
    /// publish the new generation's snapshot in whatever format the caller
    /// uses (sorted entries or a paged image), switches segment writing to
    /// generation `g+1`, and optionally prunes everything superseded —
    /// stale segments, *both* snapshot flavours, and leftover `.tmp`s.
    pub(crate) fn checkpoint_with(
        &self,
        prune: bool,
        write_snapshot: impl FnOnce(&dyn Storage, u64, Lsn) -> Result<()>,
    ) -> Result<()> {
        let mut st = self.state.lock().unwrap();
        self.flush_locked(&mut st)?;
        if st.seg_open {
            if let Err(e) = self.storage.sync(&seg_name(st.generation, st.seg_seq)) {
                st.poisoned = true;
                return Err(e.into());
            }
        }
        st.durable_lsn = st.written_lsn;
        st.unsynced_records = 0;
        let snapshot_lsn = st.next_lsn - 1;
        let old_generation = st.generation;
        let new_generation = old_generation + 1;
        write_snapshot(&*self.storage, new_generation, snapshot_lsn)?;
        st.generation = new_generation;
        st.seg_seq = 0;
        st.seg_open = false;
        st.seg_bytes = 0;
        if prune {
            for name in self.storage.list()? {
                let stale_segment = parse_seg_name(&name).is_some_and(|(g, _)| g <= old_generation);
                let stale_snapshot =
                    crate::snapshot::parse_snap_name(&name).is_some_and(|g| g < new_generation);
                let stale_psnap =
                    crate::psnap::parse_psnap_name(&name).is_some_and(|g| g < new_generation);
                // Any `.tmp` still present is an interrupted snapshot
                // publish from a previous run (the one we just wrote has
                // already been renamed into place).
                let stale_tmp = name.ends_with(".tmp");
                if stale_segment || stale_snapshot || stale_psnap || stale_tmp {
                    self.storage.remove(&name)?;
                }
            }
        }
        Ok(())
    }
}

/// What the recovery scan found in the WAL segments.
pub(crate) struct WalScan<K, V> {
    /// Replayable tail: ops with LSN > the snapshot's, contiguous from
    /// `snapshot_lsn + 1`.
    pub tail: Vec<WalOp<K, V>>,
    /// Last LSN recovered (== snapshot LSN if the tail is empty).
    pub last_lsn: Lsn,
    /// True if a torn/corrupt frame or segment cut the scan short.
    pub torn: bool,
    /// Why the first tear was declared (frame decoder's reason), if any.
    pub torn_reason: Option<&'static str>,
    /// Segments that contributed nothing (fully covered by the snapshot,
    /// or unreadable).
    pub stale_segments: usize,
    /// Generation to resume on (max seen anywhere, snapshot included).
    pub resume_generation: u64,
    /// Next segment seq to write on `resume_generation`.
    pub resume_seq: u64,
}

/// Scans every WAL segment in `(generation, seq)` order, replay-validating
/// LSN continuity from `snapshot_lsn`. Torn tails stop the scan — except
/// that a *later* segment whose header says it starts at exactly the next
/// expected LSN resumes it (that is what a recovered process's fresh
/// segment looks like when the pre-crash segment kept a torn tail).
pub(crate) fn scan_wal<K: WalCodec, V: WalCodec>(
    storage: &dyn Storage,
    snapshot_lsn: Lsn,
    snapshot_generation: u64,
) -> io::Result<WalScan<K, V>> {
    let mut segments: Vec<(u64, u64, String)> = storage
        .list()?
        .into_iter()
        .filter_map(|name| parse_seg_name(&name).map(|(g, s)| (g, s, name)))
        .collect();
    segments.sort();

    let mut scan = WalScan {
        tail: Vec::new(),
        last_lsn: snapshot_lsn,
        torn: false,
        torn_reason: None,
        stale_segments: 0,
        resume_generation: snapshot_generation,
        resume_seq: 0,
    };

    for &(generation, seq, ref name) in &segments {
        // Track where fresh segments should resume regardless of validity.
        match generation.cmp(&scan.resume_generation) {
            std::cmp::Ordering::Greater => {
                scan.resume_generation = generation;
                scan.resume_seq = seq + 1;
            }
            std::cmp::Ordering::Equal => scan.resume_seq = scan.resume_seq.max(seq + 1),
            std::cmp::Ordering::Less => {}
        }

        let bytes = storage.read(name)?;
        let Some((h_generation, h_seq, start_lsn)) = decode_seg_header(&bytes) else {
            // Unreadable header: nothing in this segment is trustworthy.
            scan.torn = true;
            scan.torn_reason.get_or_insert("corrupt segment header");
            scan.stale_segments += 1;
            continue;
        };
        if (h_generation, h_seq) != (generation, seq) {
            scan.torn = true;
            scan.torn_reason
                .get_or_insert("segment header disagrees with file name");
            scan.stale_segments += 1;
            continue;
        }
        if scan.torn && start_lsn != scan.last_lsn + 1 {
            // Past a torn tail, only a segment that explicitly continues
            // the recovered LSN chain may extend the log.
            scan.stale_segments += 1;
            continue;
        }
        if start_lsn > scan.last_lsn + 1 {
            // A gap means a whole segment vanished: stop here.
            scan.torn = true;
            scan.torn_reason.get_or_insert("LSN gap between segments");
            scan.stale_segments += 1;
            continue;
        }
        let mut pos = SEG_HEADER;
        let mut contributed = false;
        loop {
            match decode_frame::<K, V>(&bytes, pos) {
                FrameStep::End => break,
                FrameStep::Torn(reason) => {
                    scan.torn = true;
                    scan.torn_reason.get_or_insert(reason);
                    break;
                }
                FrameStep::Record { lsn, op, next } => {
                    pos = next;
                    if lsn <= snapshot_lsn {
                        // Covered by the snapshot (stale segment surviving
                        // an interrupted prune).
                        continue;
                    }
                    if lsn != scan.last_lsn + 1 {
                        scan.torn = true;
                        scan.torn_reason
                            .get_or_insert("LSN discontinuity inside segment");
                        break;
                    }
                    scan.last_lsn = lsn;
                    scan.tail.push(op);
                    contributed = true;
                }
            }
        }
        if !contributed {
            scan.stale_segments += 1;
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn mem() -> Arc<MemStorage> {
        Arc::new(MemStorage::new())
    }

    fn wal(storage: Arc<MemStorage>, tuning: WalTuning) -> Wal {
        Wal::resume(storage, tuning, 0, 0, 1)
    }

    #[test]
    fn seg_names_roundtrip() {
        assert_eq!(seg_name(3, 12), "wal-00000003-00000012.log");
        assert_eq!(parse_seg_name("wal-00000003-00000012.log"), Some((3, 12)));
        assert_eq!(parse_seg_name("wal-3-12.log"), None);
        assert_eq!(parse_seg_name("snap-00000001.qsnp"), None);
    }

    #[test]
    fn seg_header_roundtrip_and_corruption() {
        let h = encode_seg_header(2, 5, 101);
        assert_eq!(h.len(), SEG_HEADER);
        assert_eq!(decode_seg_header(&h), Some((2, 5, 101)));
        let mut bad = h.clone();
        bad[10] ^= 1;
        assert_eq!(decode_seg_header(&bad), None);
        assert_eq!(decode_seg_header(&h[..SEG_HEADER - 1]), None);
    }

    #[cfg_attr(feature = "inject-wal-bug", ignore = "framing bug injected")]
    #[test]
    fn append_commit_recover() {
        let storage = mem();
        let w = wal(storage.clone(), WalTuning::default());
        let lsn = w
            .append::<u64, u64>(&[WalOp::Insert(1, 10), WalOp::Insert(2, 20), WalOp::Delete(1)])
            .unwrap();
        assert_eq!(lsn, 3);
        assert_eq!(w.durable_lsn(), 0);
        w.commit(lsn).unwrap();
        assert_eq!(w.durable_lsn(), 3);

        let crashed = storage.crash_durable_only();
        let scan = scan_wal::<u64, u64>(&crashed, 0, 0).unwrap();
        assert_eq!(scan.last_lsn, 3);
        assert!(!scan.torn);
        assert_eq!(
            scan.tail,
            vec![WalOp::Insert(1, 10), WalOp::Insert(2, 20), WalOp::Delete(1)]
        );
        let m = w.metrics().snapshot();
        assert_eq!(m.wal_appends, 3);
        assert_eq!(m.wal_fsyncs, 1);
        assert_eq!(m.group_commit_size.count(), 1);
    }

    #[cfg_attr(feature = "inject-wal-bug", ignore = "framing bug injected")]
    #[test]
    fn uncommitted_tail_is_lost_but_prefix_survives() {
        let storage = mem();
        let w = wal(
            storage.clone(),
            WalTuning {
                segment_bytes: 1 << 20,
                buffer_bytes: 0,
            },
        );
        w.append::<u64, u64>(&[WalOp::Insert(1, 10)]).unwrap();
        w.commit(1).unwrap();
        w.append::<u64, u64>(&[WalOp::Insert(2, 20)]).unwrap(); // flushed, not synced

        let crashed = storage.crash_durable_only();
        let scan = scan_wal::<u64, u64>(&crashed, 0, 0).unwrap();
        assert_eq!(
            scan.last_lsn, 1,
            "unsynced record must not survive the harshest crash"
        );

        // A mid-frame crash point leaves a torn tail that parses cleanly
        // up to the last intact record.
        let total = storage.total_appended();
        let torn = storage.crash(total - 3);
        let scan = scan_wal::<u64, u64>(&torn, 0, 0).unwrap();
        assert_eq!(scan.last_lsn, 1);
        assert!(scan.torn);
    }

    #[cfg_attr(feature = "inject-wal-bug", ignore = "framing bug injected")]
    #[test]
    fn segments_rotate_and_scan_in_order() {
        let storage = mem();
        // Tiny segments force rotation every record or two.
        let w = wal(
            storage.clone(),
            WalTuning {
                segment_bytes: 64,
                buffer_bytes: 0,
            },
        );
        for k in 0..50u64 {
            let lsn = w.append::<u64, u64>(&[WalOp::Insert(k, k)]).unwrap();
            w.commit(lsn).unwrap();
        }
        let names = storage.list().unwrap();
        assert!(names.len() > 5, "expected many segments, got {names:?}");
        let scan = scan_wal::<u64, u64>(&storage.crash_durable_only(), 0, 0).unwrap();
        assert_eq!(scan.last_lsn, 50);
        assert_eq!(scan.tail.len(), 50);
        assert!(!scan.torn);
        assert_eq!(scan.resume_seq as usize, names.len());
    }

    #[cfg_attr(feature = "inject-wal-bug", ignore = "framing bug injected")]
    #[test]
    fn post_crash_segment_resumes_after_torn_tail() {
        // Crash leaves segment 0 with a torn final frame; a recovered
        // process opens segment 1 starting at the next LSN. The second
        // recovery must replay both.
        let storage = mem();
        let w = wal(
            storage.clone(),
            WalTuning {
                segment_bytes: 1 << 20,
                buffer_bytes: 0,
            },
        );
        w.append::<u64, u64>(&[WalOp::Insert(1, 10)]).unwrap();
        w.commit(1).unwrap();
        w.append::<u64, u64>(&[WalOp::Insert(2, 20)]).unwrap();

        let crashed = Arc::new(storage.crash(storage.total_appended() - 2)); // torn frame
        let scan = scan_wal::<u64, u64>(&*crashed, 0, 0).unwrap();
        assert_eq!(scan.last_lsn, 1);
        assert!(scan.torn);

        // Resume exactly as Durable::open would.
        let w2 = Wal::resume(
            crashed.clone(),
            WalTuning {
                segment_bytes: 1 << 20,
                buffer_bytes: 0,
            },
            scan.resume_generation,
            scan.resume_seq,
            scan.last_lsn + 1,
        );
        w2.append::<u64, u64>(&[WalOp::Insert(3, 30)]).unwrap();
        w2.commit(2).unwrap();

        // Second recovery: torn segment 0 plus the fresh segment that
        // continues at LSN 2 — both must replay.
        let scan = scan_wal::<u64, u64>(&crashed.crash_durable_only(), 0, 0).unwrap();
        assert_eq!(scan.last_lsn, 2);
        assert_eq!(scan.tail, vec![WalOp::Insert(1, 10), WalOp::Insert(3, 30)]);
    }

    /// Delegates to a [`MemStorage`] but fails appends while armed, after
    /// landing *half* the bytes — the partial-write worst case a real
    /// device error produces.
    struct FailingStorage {
        inner: MemStorage,
        fail_appends: std::sync::atomic::AtomicBool,
    }

    impl FailingStorage {
        fn new() -> Self {
            FailingStorage {
                inner: MemStorage::new(),
                fail_appends: std::sync::atomic::AtomicBool::new(false),
            }
        }

        fn arm(&self, on: bool) {
            self.fail_appends
                .store(on, std::sync::atomic::Ordering::SeqCst);
        }
    }

    impl Storage for FailingStorage {
        fn append(&self, file: &str, bytes: &[u8]) -> io::Result<()> {
            if self.fail_appends.load(std::sync::atomic::Ordering::SeqCst) {
                let _ = self.inner.append(file, &bytes[..bytes.len() / 2]);
                return Err(io::Error::other("injected append failure"));
            }
            self.inner.append(file, bytes)
        }

        fn sync(&self, file: &str) -> io::Result<()> {
            self.inner.sync(file)
        }

        fn read(&self, file: &str) -> io::Result<Vec<u8>> {
            self.inner.read(file)
        }

        fn list(&self) -> io::Result<Vec<String>> {
            self.inner.list()
        }

        fn remove(&self, file: &str) -> io::Result<()> {
            self.inner.remove(file)
        }

        fn rename(&self, from: &str, to: &str) -> io::Result<()> {
            self.inner.rename(from, to)
        }
    }

    #[cfg_attr(feature = "inject-wal-bug", ignore = "framing bug injected")]
    #[test]
    fn failed_append_poisons_instead_of_acking_an_lsn_gap() {
        let storage = Arc::new(FailingStorage::new());
        let w = Wal::resume(
            storage.clone(),
            WalTuning {
                segment_bytes: 1 << 20,
                buffer_bytes: 0, // write-through: every append flushes
            },
            0,
            0,
            1,
        );
        w.append::<u64, u64>(&[WalOp::Insert(1, 10)]).unwrap();
        w.commit(1).unwrap();

        // The failing append lands a partial frame, then errors. The WAL
        // must refuse all further work rather than drop the frame's LSN
        // and later ack records recovery can never reach past the gap.
        storage.arm(true);
        assert!(w.append::<u64, u64>(&[WalOp::Insert(2, 20)]).is_err());
        storage.arm(false);
        assert!(
            w.append::<u64, u64>(&[WalOp::Insert(3, 30)]).is_err(),
            "poisoned WAL must reject appends even after the device heals"
        );
        assert!(w.flush().is_err());
        assert!(
            w.commit(2).is_err(),
            "poisoned WAL must never ack LSNs past the failure"
        );
        assert_eq!(w.durable_lsn(), 1, "watermark frozen at the failure");

        // Whatever reached storage recovers to a contiguous prefix: LSN 1
        // plus a torn tail, never a gap.
        let image = storage.inner.crash(usize::MAX);
        let scan = scan_wal::<u64, u64>(&image, 0, 0).unwrap();
        assert_eq!(scan.last_lsn, 1);
        assert_eq!(scan.tail, vec![WalOp::Insert(1, 10)]);
        assert!(scan.torn, "the partial frame reads as a torn tail");
    }

    #[cfg_attr(feature = "inject-wal-bug", ignore = "framing bug injected")]
    #[test]
    fn group_commit_batches_concurrent_writers() {
        let storage = mem();
        let w = Arc::new(wal(storage, WalTuning::default()));
        let threads = 8;
        let per = 50u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let w = &w;
                scope.spawn(move || {
                    for i in 0..per {
                        let lsn = w
                            .append::<u64, u64>(&[WalOp::Insert(t * 1000 + i, i)])
                            .unwrap();
                        w.commit(lsn).unwrap();
                    }
                });
            }
        });
        let m = w.metrics().snapshot();
        assert_eq!(m.wal_appends, threads * per);
        assert!(
            m.wal_fsyncs <= threads * per,
            "never more fsyncs than commits"
        );
        assert_eq!(
            m.group_commit_size.sum_ns,
            threads * per,
            "every record is covered by exactly one group"
        );
        assert_eq!(w.durable_lsn(), threads * per);
    }
}

//! # quit-durability — crash durability for the QuIT index family
//!
//! Everything else in this workspace lives and dies with the process; this
//! crate makes an index survive a crash, built around the same observation
//! the paper builds ingestion around: **sortedness is cheap to exploit**.
//!
//! * A **segmented write-ahead log** ([`Wal`]) frames every mutation with
//!   a CRC32 and a dense LSN (hand-rolled, no dependencies). Concurrent
//!   writers batch their fsyncs through a **group-commit** leader — one
//!   fsync per group, composing with `ConcurrentTree`'s OLC write path.
//! * **Sorted snapshots** (checkpoints) walk the tree in key order, so
//!   recovery is `bulk_load(snapshot)` — O(n), packed to the configured
//!   `TreeConfig::bulk_fill` — `+ replay(WAL tail)`, with the
//!   append-mostly tail fed through `insert_batch`'s sorted-run fast path
//!   ([`apply_tail`]).
//! * [`Durable<T>`] wraps any `SortedIndex` with log-then-apply semantics
//!   behind three [`DurabilityLevel`]s: `Off`, `Buffered`, `GroupCommit`.
//!   Every fallible public API returns [`quit_core::Result`] — `Poisoned`
//!   for a log that can no longer promise durability, `Io` (via `From`)
//!   for storage failures — so callers and `quit-service`'s wire protocol
//!   share one error taxonomy. Only the [`Storage`] backend SPI keeps raw
//!   `io::Result`, since its implementors speak to the OS.
//! * Verification is part of the subsystem: [`MemStorage`] models a crash
//!   as an arbitrary byte prefix of the global append order (never less
//!   than what fsync promised), [`FaultyWriter`] injects torn/short/
//!   bit-flipped writes, and `quit-testkit`'s crash-recovery differential
//!   mode fuzzes crash points against a model replayed to the last durable
//!   group.
//!
//! ```
//! use quit_core::{FastPathMode, SortedIndex, TreeConfig};
//! use quit_durability::{bptree_builder, Durable, DurabilityConfig, MemStorage, Storage};
//! use std::sync::Arc;
//!
//! let storage = Arc::new(MemStorage::new());
//! let build = || bptree_builder::<u64, u64>(FastPathMode::Pole, TreeConfig::paper_default());
//! let (mut index, _) = Durable::open(
//!     storage.clone() as Arc<dyn Storage>,
//!     DurabilityConfig::group_commit(),
//!     build(),
//! )
//! .unwrap();
//! index.insert(1, 10);
//! index.insert(2, 20);
//!
//! // Crash keeping only fsync-guaranteed bytes, then recover.
//! let crashed = Arc::new(storage.crash_durable_only());
//! let (mut recovered, report) = Durable::open(
//!     crashed as Arc<dyn Storage>,
//!     DurabilityConfig::group_commit(),
//!     build(),
//! )
//! .unwrap();
//! assert_eq!(report.recovered_lsn, 2);
//! assert_eq!(recovered.get(2), Some(20));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod durable;
mod frame;
mod psnap;
mod snapshot;
mod storage;
mod txn;
mod wal;

pub use durable::{
    apply_tail, bptree_builder, concurrent_builder, DurabilityConfig, DurabilityLevel, Durable,
    RecoveryReport,
};
pub use frame::{crc32, WalCodec, WalOp};
pub use quit_core::{Error, Result};
pub use storage::{FaultyWriter, FsStorage, MemStorage, Storage};
pub use txn::{Txn, TxnConfig, TxnStats, TxnStore};
pub use wal::{Lsn, Wal, WalTuning};

//! [`Durable<T>`]: write-ahead logging and crash recovery wrapped around
//! any [`SortedIndex`].
//!
//! The wrapper is log-then-apply: every mutation is framed into the WAL
//! before it touches the wrapped index, so at any instant the durable WAL
//! prefix describes a state the index has already reached or will reach —
//! recovery replays that prefix and lands on exactly the state covered by
//! the last durable group. Lookups and scans pass straight through.
//!
//! For the `&mut self` [`SortedIndex`] path that invariant is free. For
//! the shared (`&self`) path on [`Durable<ConcurrentTree>`], two
//! concurrent writers hitting the *same key* could otherwise log in one
//! order and apply in the other, making the pre-crash state and the
//! replayed state disagree on that key. The wrapper therefore holds a
//! per-key **stripe lock** across LSN assignment *and* tree application:
//! log order equals apply order for every conflicting key (ops on
//! distinct keys commute, so their relative order is irrelevant). The
//! group fsync is awaited *after* the stripe is released, so same-stripe
//! writers never serialize on the device — only on the (cheap) in-memory
//! append+apply. Consequence: at `GroupCommit`, a mutation becomes
//! visible to concurrent readers when it is applied, slightly before its
//! group fsync completes; durability is only promised once the call
//! returns.
//!
//! Recovery composes the two sortedness fast paths this workspace is
//! built around: the snapshot is key-ordered, so it `bulk_load`s in O(n)
//! at the configured leaf fill; the WAL tail is append-mostly, so
//! [`apply_tail`] feeds its insert runs through `insert_batch` sorted-run
//! detection instead of point inserts.

use crate::frame::WalCodec;
use crate::psnap::{paged_snapshot_candidates, read_paged_snapshot, write_paged_snapshot};
use crate::snapshot::load_best_snapshot;
use crate::storage::Storage;
use crate::wal::{scan_wal, Lsn, Wal, WalTuning};
use crate::WalOp;
use quit_concurrent::{ConcConfig, ConcurrentTree};
use quit_core::{
    BpTree, Error, FastPathMode, Key, Result, SortedIndex, StatsSnapshot, StorageKind, TreeConfig,
};
use std::ops::RangeBounds;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Stripe count for the shared-path per-key ordering locks. Collisions
/// between distinct keys only cost contention, never correctness, so a
/// modest power of two suffices.
const WRITE_STRIPES: usize = 64;

/// How much durability each mutation buys before it returns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DurabilityLevel {
    /// No logging at all — the wrapper is a transparent shim (for
    /// apples-to-apples overhead measurement).
    Off,
    /// Mutations are framed into the WAL buffer and flushed to the OS as
    /// the buffer fills, but never fsynced on the hot path. A crash loses
    /// at most the unflushed/unsynced suffix; recovery still lands on a
    /// consistent prefix.
    Buffered,
    /// Every mutation (or batch) waits for an fsync covering its LSN
    /// before returning — batched by the group-commit leader, so
    /// concurrent writers share one fsync per group (default).
    #[default]
    GroupCommit,
}

/// Configuration for [`Durable`], following the workspace's config-knob
/// idiom (`TreeConfig`/`ConcConfig`): constructors for the common cases,
/// `with_*` builders for the rest.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// Durability bought per mutation.
    pub level: DurabilityLevel,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: usize,
    /// WAL append-buffer size in bytes (0 = write-through).
    pub wal_buffer_bytes: usize,
    /// Entries per CRC-framed snapshot chunk.
    pub snapshot_chunk: usize,
    /// Remove superseded segments and snapshots after a checkpoint.
    pub prune_on_checkpoint: bool,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            level: DurabilityLevel::GroupCommit,
            segment_bytes: 8 << 20,
            wal_buffer_bytes: 64 << 10,
            snapshot_chunk: 1024,
            prune_on_checkpoint: true,
        }
    }
}

impl DurabilityConfig {
    /// Group-commit durability (the default).
    pub fn group_commit() -> Self {
        Self::default()
    }

    /// Buffered logging: WAL written, fsync off the hot path.
    pub fn buffered() -> Self {
        Self::default().with_level(DurabilityLevel::Buffered)
    }

    /// Logging disabled (overhead baseline).
    pub fn off() -> Self {
        Self::default().with_level(DurabilityLevel::Off)
    }

    /// Builder-style override of the durability level.
    pub fn with_level(mut self, level: DurabilityLevel) -> Self {
        self.level = level;
        self
    }

    /// Builder-style override of the segment rotation threshold.
    pub fn with_segment_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "segment size must be positive");
        self.segment_bytes = bytes;
        self
    }

    /// Builder-style override of the WAL buffer size (0 = write-through).
    pub fn with_wal_buffer_bytes(mut self, bytes: usize) -> Self {
        self.wal_buffer_bytes = bytes;
        self
    }

    /// Builder-style override of the snapshot chunk size (entries).
    pub fn with_snapshot_chunk(mut self, entries: usize) -> Self {
        assert!(entries > 0, "snapshot chunk must be positive");
        self.snapshot_chunk = entries;
        self
    }

    /// Builder-style toggle of checkpoint pruning.
    pub fn with_prune_on_checkpoint(mut self, prune: bool) -> Self {
        self.prune_on_checkpoint = prune;
        self
    }

    pub(crate) fn tuning(&self) -> WalTuning {
        WalTuning {
            segment_bytes: self.segment_bytes,
            buffer_bytes: self.wal_buffer_bytes,
        }
    }
}

/// What [`Durable::open`] recovered, for logging and test assertions.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Entries bulk-loaded from the newest valid snapshot.
    pub snapshot_entries: usize,
    /// LSN the snapshot covered (0 = no snapshot).
    pub snapshot_lsn: Lsn,
    /// WAL records replayed past the snapshot.
    pub tail_records: usize,
    /// Last LSN recovered; the next append gets `recovered_lsn + 1`.
    pub recovered_lsn: Lsn,
    /// True if the WAL ended in a torn/corrupt frame (expected after a
    /// mid-write crash; everything up to it is recovered).
    pub torn_tail: bool,
    /// Segments that contributed no records (stale generations, corrupt
    /// headers).
    pub stale_segments: usize,
    /// Snapshot files rejected as corrupt before one validated.
    pub rejected_snapshots: usize,
    /// Wall-clock recovery time (also recorded in the `recovery_latency`
    /// histogram).
    pub elapsed: Duration,
}

/// A [`SortedIndex`] with a write-ahead log in front of it.
///
/// Mutations through the [`SortedIndex`] impl (and the `&self` shared API
/// of [`Durable<ConcurrentTree>`]) are logged first, then applied. I/O
/// errors on the log path panic — the trait has no error channel, and a
/// WAL that can no longer write must not let callers believe their writes
/// are durable. The WAL also *poisons* itself on any append/fsync
/// failure, so concurrent writer threads that did not observe the
/// original error fail (and panic) on their next mutation instead of
/// acking records through a broken log. Use
/// [`Durable::flush`]/[`Durable::commit_all`] for explicit durability
/// points at the `Buffered` level.
pub struct Durable<T> {
    inner: T,
    wal: Wal,
    config: DurabilityConfig,
    /// Per-key ordering locks for the shared (`&self`) write path: a
    /// key's stripe is held across LSN assignment and tree application,
    /// so the WAL orders conflicting ops exactly as they applied (see
    /// the module docs).
    stripes: Box<[Mutex<()>]>,
}

impl<T> Durable<T> {
    /// Opens (or creates) a durable index on `storage`: loads the newest
    /// valid snapshot, bulk-builds the inner index from it via `build`,
    /// replays the WAL tail through [`apply_tail`], and positions the WAL
    /// to append after the last recovered LSN.
    ///
    /// `build` receives the snapshot's entries in key order; use
    /// [`bptree_builder`]/[`concurrent_builder`] for the in-workspace
    /// families (they honour `TreeConfig::bulk_fill`).
    pub fn open<K, V, F>(
        storage: Arc<dyn Storage>,
        config: DurabilityConfig,
        build: F,
    ) -> Result<(Self, RecoveryReport)>
    where
        K: Key + WalCodec,
        V: Clone + WalCodec,
        T: SortedIndex<K, V>,
        F: FnOnce(Vec<(K, V)>) -> T,
    {
        let t0 = Instant::now();
        let ((snap_generation, snapshot_lsn, entries), rejected_snapshots) =
            load_best_snapshot::<K, V>(&*storage)?;
        let snapshot_entries = entries.len();
        let scan = scan_wal::<K, V>(&*storage, snapshot_lsn, snap_generation)?;
        let mut inner = build(entries);
        let tail_records = apply_tail(&mut inner, &scan.tail);
        let wal = Wal::resume(
            storage,
            config.tuning(),
            scan.resume_generation,
            scan.resume_seq,
            scan.last_lsn + 1,
        );
        let elapsed = t0.elapsed();
        wal.metrics()
            .recovery_latency
            .record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        let report = RecoveryReport {
            snapshot_entries,
            snapshot_lsn,
            tail_records,
            recovered_lsn: scan.last_lsn,
            torn_tail: scan.torn,
            stale_segments: scan.stale_segments,
            rejected_snapshots,
            elapsed,
        };
        let stripes = (0..WRITE_STRIPES).map(|_| Mutex::new(())).collect();
        Ok((
            Durable {
                inner,
                wal,
                config,
                stripes,
            },
            report,
        ))
    }

    /// The wrapped index (shared access — this is how readers reach a
    /// `ConcurrentTree`'s `&self` API).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wrapped index, mutably (bypasses logging — mutations made here
    /// are *not* durable; meant for inspection helpers like
    /// `check_invariants`).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the index, dropping the WAL handle.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The active configuration.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// The wrapped WAL (metrics, LSN watermarks).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Pushes any buffered WAL bytes to the OS (no fsync).
    pub fn flush(&self) -> Result<()> {
        self.wal.flush()
    }

    /// Blocks until everything logged so far is fsync-durable (explicit
    /// durability point for the `Buffered` level; a no-op at `Off`).
    pub fn commit_all(&self) -> Result<()> {
        if self.config.level == DurabilityLevel::Off {
            return Ok(());
        }
        self.wal.commit(self.wal.last_lsn())
    }

    /// Appends `ops` to the WAL without waiting for durability, returning
    /// the LSN that [`ack`](Self::ack) must wait on (`None` unless the
    /// level is `GroupCommit`). Panics on I/O error (see the type-level
    /// docs).
    fn log_nowait<K: WalCodec, V: WalCodec>(&self, ops: &[WalOp<K, V>]) -> Option<Lsn> {
        match self.config.level {
            DurabilityLevel::Off => None,
            DurabilityLevel::Buffered => {
                self.wal.append(ops).expect("WAL append failed");
                None
            }
            DurabilityLevel::GroupCommit => Some(self.wal.append(ops).expect("WAL append failed")),
        }
    }

    /// Blocks until the LSN returned by [`log_nowait`](Self::log_nowait)
    /// is fsync-durable (no-op for `None`).
    fn ack(&self, lsn: Option<Lsn>) {
        if let Some(lsn) = lsn {
            self.wal.commit(lsn).expect("WAL fsync failed");
        }
    }

    /// Logs `ops` according to the configured level, waiting for
    /// durability where the level demands it.
    fn log<K: WalCodec, V: WalCodec>(&self, ops: &[WalOp<K, V>]) {
        self.ack(self.log_nowait(ops));
    }

    /// Checkpoint: writes the index's full contents as a sorted snapshot,
    /// rotates the WAL to a fresh generation, and prunes superseded files
    /// (if configured). After this, recovery is `bulk_load + (tiny) tail`.
    pub fn checkpoint<K, V>(&mut self) -> Result<()>
    where
        K: Key + WalCodec,
        V: Clone + WalCodec,
        T: SortedIndex<K, V>,
    {
        let entries: Vec<(K, V)> = self.inner.range(..).collect();
        self.wal.checkpoint(
            &entries,
            self.config.snapshot_chunk,
            self.config.prune_on_checkpoint,
        )
    }
}

/// Paged-tree durability: checkpoints that write the tree's *pages*
/// (`psnap-….qpsf`) instead of its entries, and an open path whose
/// recovery is partly lazy — integrity is validated eagerly, but nodes
/// fault in from the buffer pool on demand instead of being rebuilt by
/// `bulk_load`.
impl<K, V> Durable<BpTree<K, V>>
where
    K: Key + WalCodec,
    V: Clone + WalCodec + 'static,
{
    /// Opens (or creates) a durable *paged* [`BpTree`]:
    /// `tree_config.storage` must be [`StorageKind::Paged`].
    ///
    /// Recovery prefers the newest fully-valid paged snapshot — each
    /// candidate's header, metadata, and every page CRC are verified in
    /// one byte sweep, and any malformation rejects the whole candidate —
    /// falling back to older generations, then to sorted (`.qsnp`)
    /// snapshots from pre-paged deployments, then to an empty tree; the
    /// WAL tail replays on top as usual. Opening from a page image decodes
    /// no nodes beyond the fast-path spine, so recovery cost stops scaling
    /// with tree size.
    pub fn open_paged(
        storage: Arc<dyn Storage>,
        config: DurabilityConfig,
        mode: FastPathMode,
        tree_config: TreeConfig,
    ) -> Result<(Self, RecoveryReport)> {
        if !matches!(tree_config.storage, StorageKind::Paged { .. }) {
            return Err(Error::config(
                "open_paged requires TreeConfig::with_storage(StorageKind::Paged { .. })",
            ));
        }
        let t0 = Instant::now();
        let mut rejected_snapshots = 0;
        let mut best_paged: Option<(u64, Lsn, BpTree<K, V>)> = None;
        for (generation, name) in paged_snapshot_candidates(&*storage)? {
            let bytes = storage.read(&name)?;
            let recovered = read_paged_snapshot(&bytes)
                .filter(|(g, ..)| *g == generation)
                .and_then(|(_, lsn, image)| {
                    BpTree::from_page_image(image, tree_config.clone())
                        .ok()
                        .map(|tree| (lsn, tree))
                });
            match recovered {
                Some((lsn, tree)) => {
                    best_paged = Some((generation, lsn, tree));
                    break;
                }
                None => rejected_snapshots += 1,
            }
        }
        // Sorted snapshots can coexist (a pre-paged deployment's files, or
        // pruning disabled): take whichever flavour is the newer
        // generation.
        let ((sorted_generation, sorted_lsn, entries), sorted_rejected) =
            load_best_snapshot::<K, V>(&*storage)?;
        rejected_snapshots += sorted_rejected;
        let paged_wins = best_paged
            .as_ref()
            .is_some_and(|(generation, ..)| *generation >= sorted_generation);
        let (snap_generation, snapshot_lsn, mut inner) = if paged_wins {
            let (generation, lsn, tree) = best_paged.unwrap();
            (generation, lsn, tree)
        } else {
            let fill = tree_config.bulk_fill;
            let tree = BpTree::bulk_load(mode, tree_config, entries, fill);
            (sorted_generation, sorted_lsn, tree)
        };
        let snapshot_entries = inner.len();
        let scan = scan_wal::<K, V>(&*storage, snapshot_lsn, snap_generation)?;
        let tail_records = apply_tail(&mut inner, &scan.tail);
        let wal = Wal::resume(
            storage,
            config.tuning(),
            scan.resume_generation,
            scan.resume_seq,
            scan.last_lsn + 1,
        );
        let elapsed = t0.elapsed();
        wal.metrics()
            .recovery_latency
            .record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        let report = RecoveryReport {
            snapshot_entries,
            snapshot_lsn,
            tail_records,
            recovered_lsn: scan.last_lsn,
            torn_tail: scan.torn,
            stale_segments: scan.stale_segments,
            rejected_snapshots,
            elapsed,
        };
        let stripes = (0..WRITE_STRIPES).map(|_| Mutex::new(())).collect();
        Ok((
            Durable {
                inner,
                wal,
                config,
                stripes,
            },
            report,
        ))
    }

    /// Checkpoint for a paged tree: flushes every dirty page and publishes
    /// the page file itself as the generation-`g+1` snapshot
    /// (`psnap-….qpsf`, atomic tmp + sync + rename), rotates the WAL, and
    /// prunes superseded files of *both* snapshot flavours. Errors with
    /// `config` if the tree runs the in-memory arena backend — use
    /// [`Durable::checkpoint`] there.
    pub fn checkpoint_paged(&mut self) -> Result<()> {
        let image = self
            .inner
            .to_page_image()
            .ok_or_else(|| Error::config("checkpoint_paged requires the paged storage backend"))?;
        self.wal.checkpoint_with(
            self.config.prune_on_checkpoint,
            |storage, generation, lsn| {
                write_paged_snapshot(storage, generation, lsn, &image).map_err(Into::into)
            },
        )
    }
}

impl<K, V, T> SortedIndex<K, V> for Durable<T>
where
    K: Key + WalCodec,
    V: Clone + WalCodec,
    T: SortedIndex<K, V>,
{
    fn insert(&mut self, key: K, value: V) {
        self.log(&[WalOp::Insert(key, value.clone())]);
        self.inner.insert(key, value);
    }

    fn insert_batch(&mut self, entries: &[(K, V)]) -> usize {
        if !entries.is_empty() {
            let ops: Vec<WalOp<K, V>> = entries
                .iter()
                .map(|&(k, ref v)| WalOp::Insert(k, v.clone()))
                .collect();
            // One append + (at GroupCommit) one commit for the whole
            // batch: the WAL amortizes exactly like the tree's sorted-run
            // fast path does.
            self.log(&ops);
        }
        self.inner.insert_batch(entries)
    }

    fn get(&mut self, key: K) -> Option<V> {
        self.inner.get(key)
    }

    fn delete(&mut self, key: K) -> Option<V> {
        // Always logged, hit or miss: a miss-delete replays as a no-op, so
        // skipping the read-before-write keeps the hot path cheap and
        // replay deterministic.
        self.log(&[WalOp::<K, V>::Delete(key)]);
        self.inner.delete(key)
    }

    fn range<R: RangeBounds<K>>(&mut self, bounds: R) -> impl Iterator<Item = (K, V)> + '_ {
        self.inner.range(bounds)
    }

    fn range_with_stats<R: RangeBounds<K>>(&mut self, bounds: R) -> quit_core::RangeScan<K, V> {
        self.inner.range_with_stats(bounds)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn metrics(&self) -> StatsSnapshot {
        let mut snap = self.inner.metrics();
        let wal = self.wal.metrics().snapshot();
        snap.wal_appends = wal.wal_appends;
        snap.wal_fsyncs = wal.wal_fsyncs;
        snap.group_commit_size = wal.group_commit_size;
        snap.recovery_latency = wal.recovery_latency;
        snap
    }

    fn reset_metrics(&self) {
        self.inner.reset_metrics();
        self.wal.metrics().reset();
    }
}

impl<K, V> Durable<ConcurrentTree<K, V>>
where
    K: Key + WalCodec,
    V: Clone + WalCodec,
{
    /// The stripe ordering writes to `key`. Distinct keys may share a
    /// stripe (harmless contention); equal keys always map to the same
    /// stripe, which is all the ordering argument needs.
    fn stripe(&self, key: K) -> &Mutex<()> {
        // `to_ikr` is a pure function of the key, so equal keys hash
        // alike — except f64's two zeros, which compare equal with
        // different bit patterns; normalize before hashing.
        let ikr = key.to_ikr();
        let mut h = (if ikr == 0.0 { 0.0 } else { ikr }).to_bits();
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        &self.stripes[(h % self.stripes.len() as u64) as usize]
    }

    /// Logged insert through `&self` — N threads call this concurrently;
    /// at `GroupCommit` their fsyncs batch through the group-commit
    /// leader while the tree insert itself rides the OLC write path.
    ///
    /// The key's stripe lock is held across LSN assignment and the tree
    /// insert (log order ≡ apply order for conflicting keys) and released
    /// before the group fsync is awaited.
    pub fn insert_shared(&self, key: K, value: V) {
        let lsn = {
            let _order = self.stripe(key).lock().unwrap();
            let lsn = self.log_nowait(&[WalOp::Insert(key, value.clone())]);
            self.inner.insert(key, value);
            lsn
        };
        self.ack(lsn);
    }

    /// Logged delete through `&self` (miss-deletes log a no-op record),
    /// with the same stripe-ordered log+apply as
    /// [`insert_shared`](Self::insert_shared).
    pub fn delete_shared(&self, key: K) -> Option<V> {
        let (prev, lsn) = {
            let _order = self.stripe(key).lock().unwrap();
            let lsn = self.log_nowait(&[WalOp::<K, V>::Delete(key)]);
            (self.inner.delete(key), lsn)
        };
        self.ack(lsn);
        prev
    }

    /// The underlying concurrent tree, for `&self` reads (`get`, `range`).
    pub fn tree(&self) -> &ConcurrentTree<K, V> {
        &self.inner
    }
}

/// Replays a recovered WAL tail into `index`, batching consecutive insert
/// runs through [`SortedIndex::insert_batch`] so the append-mostly tail
/// rides the sorted-run fast path instead of n point inserts. Returns the
/// number of records applied.
///
/// Transaction records (`WalOp::Txn*`) are skipped: a plain `Durable`
/// index has no version dimension to apply them to. They only appear in
/// WALs written by `TxnStore`, whose own recovery path replays them with
/// commit-atomic semantics; opening such a WAL as a plain `Durable` is a
/// read of the non-transactional records only.
pub fn apply_tail<K, V, T>(index: &mut T, tail: &[WalOp<K, V>]) -> usize
where
    K: Key,
    V: Clone,
    T: SortedIndex<K, V>,
{
    let mut applied = 0usize;
    let mut run: Vec<(K, V)> = Vec::new();
    for op in tail {
        match op {
            WalOp::Insert(k, v) => {
                run.push((*k, v.clone()));
                applied += 1;
            }
            WalOp::Delete(k) => {
                if !run.is_empty() {
                    index.insert_batch(&run);
                    run.clear();
                }
                index.delete(*k);
                applied += 1;
            }
            WalOp::TxnBegin(_)
            | WalOp::TxnWrite(..)
            | WalOp::TxnDelete(..)
            | WalOp::TxnCommit(..)
            | WalOp::TxnAbort(_) => {}
        }
    }
    if !run.is_empty() {
        index.insert_batch(&run);
    }
    applied
}

/// A [`Durable::open`] builder for [`BpTree`]: bulk-loads the snapshot at
/// the configuration's `bulk_fill` (the Fig 10c leaf-count knob), so a
/// recovered tree gets the same leaf occupancy the deployment configured.
pub fn bptree_builder<K: Key, V: Clone + 'static>(
    mode: FastPathMode,
    config: TreeConfig,
) -> impl FnOnce(Vec<(K, V)>) -> BpTree<K, V> {
    move |entries| {
        let fill = config.bulk_fill;
        BpTree::bulk_load(mode, config, entries, fill)
    }
}

/// A [`Durable::open`] builder for [`ConcurrentTree`]: loads the snapshot
/// through `insert_batch`, whose sorted-run detection makes key-ordered
/// recovery input an append-mostly stream.
pub fn concurrent_builder<K: Key, V: Clone>(
    config: ConcConfig,
) -> impl FnOnce(Vec<(K, V)>) -> ConcurrentTree<K, V> {
    move |entries| {
        let mut tree = ConcurrentTree::new(config);
        SortedIndex::insert_batch(&mut tree, &entries);
        tree
    }
}

#[cfg(all(test, not(feature = "inject-wal-bug")))]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use quit_core::Variant;

    fn quit_builder() -> impl FnOnce(Vec<(u64, u64)>) -> BpTree<u64, u64> {
        bptree_builder(FastPathMode::Pole, TreeConfig::small(16))
    }

    fn open(
        storage: &Arc<MemStorage>,
        config: DurabilityConfig,
    ) -> (Durable<BpTree<u64, u64>>, RecoveryReport) {
        Durable::open(storage.clone() as Arc<dyn Storage>, config, quit_builder()).unwrap()
    }

    #[test]
    fn fresh_open_is_empty() {
        let storage = Arc::new(MemStorage::new());
        let (d, report) = open(&storage, DurabilityConfig::group_commit());
        assert!(d.inner().is_empty());
        assert_eq!(report.recovered_lsn, 0);
        assert_eq!(report.snapshot_entries, 0);
        assert!(!report.torn_tail);
    }

    #[test]
    fn committed_writes_survive_the_harshest_crash() {
        let storage = Arc::new(MemStorage::new());
        let (mut d, _) = open(&storage, DurabilityConfig::group_commit());
        for k in 0..100u64 {
            d.insert(k, k * 2);
        }
        d.delete(50);
        assert_eq!(d.len(), 99);

        let crashed = Arc::new(storage.crash_durable_only());
        let (mut d2, report) = open(&crashed, DurabilityConfig::group_commit());
        assert_eq!(report.recovered_lsn, 101);
        assert_eq!(report.tail_records, 101);
        assert_eq!(d2.len(), 99);
        assert_eq!(d2.get(50), None);
        assert_eq!(d2.get(99), Some(198));
        d2.inner().check_invariants().unwrap();
    }

    #[test]
    fn buffered_level_loses_at_most_the_unsynced_suffix() {
        let storage = Arc::new(MemStorage::new());
        let (mut d, _) = open(&storage, DurabilityConfig::buffered());
        for k in 0..1000u64 {
            d.insert(k, k);
        }
        d.commit_all().unwrap();
        for k in 1000..2000u64 {
            d.insert(k, k);
        }
        // No commit for the second thousand.
        let crashed = Arc::new(storage.crash_durable_only());
        let (d2, report) = open(&crashed, DurabilityConfig::buffered());
        assert!(
            report.recovered_lsn >= 1000,
            "committed prefix must survive"
        );
        assert_eq!(d2.inner().len() as u64, report.recovered_lsn);
    }

    #[test]
    fn off_level_logs_nothing() {
        let storage = Arc::new(MemStorage::new());
        let (mut d, _) = open(&storage, DurabilityConfig::off());
        for k in 0..100u64 {
            d.insert(k, k);
        }
        assert_eq!(storage.total_appended(), 0);
        assert_eq!(SortedIndex::<u64, u64>::metrics(&d).wal_appends, 0);
    }

    #[test]
    fn checkpoint_then_tail_recovers_and_prunes() {
        let storage = Arc::new(MemStorage::new());
        let (mut d, _) = open(&storage, DurabilityConfig::group_commit());
        let batch: Vec<(u64, u64)> = (0..500u64).map(|k| (k, k)).collect();
        d.insert_batch(&batch);
        d.checkpoint::<u64, u64>().unwrap();
        // Post-checkpoint tail.
        for k in 500..600u64 {
            d.insert(k, k);
        }
        d.delete(0);

        let files = storage.list().unwrap();
        assert!(
            files.iter().any(|f| f.starts_with("snap-")),
            "snapshot written: {files:?}"
        );
        assert!(
            !files.iter().any(|f| f.contains("wal-00000000")),
            "generation-0 segments pruned: {files:?}"
        );

        let crashed = Arc::new(storage.crash_durable_only());
        let (mut d2, report) = open(&crashed, DurabilityConfig::group_commit());
        assert_eq!(report.snapshot_entries, 500);
        assert_eq!(report.snapshot_lsn, 500);
        assert_eq!(report.tail_records, 101);
        assert_eq!(d2.len(), 599);
        assert_eq!(d2.get(0), None);
        assert_eq!(d2.get(599), Some(599));
    }

    fn paged_tree_config() -> TreeConfig {
        TreeConfig::small(16).with_storage(quit_core::StorageKind::paged(8))
    }

    fn open_paged(storage: &Arc<MemStorage>) -> (Durable<BpTree<u64, u64>>, RecoveryReport) {
        Durable::open_paged(
            storage.clone() as Arc<dyn Storage>,
            DurabilityConfig::group_commit(),
            FastPathMode::Pole,
            paged_tree_config(),
        )
        .unwrap()
    }

    #[test]
    fn paged_checkpoint_recovers_lazily_with_tail() {
        let storage = Arc::new(MemStorage::new());
        let (mut d, report) = open_paged(&storage);
        assert_eq!(report.snapshot_entries, 0);
        let batch: Vec<(u64, u64)> = (0..500u64).map(|k| (k, k * 3)).collect();
        d.insert_batch(&batch);
        d.checkpoint_paged().unwrap();
        for k in 500..600u64 {
            d.insert(k, k * 3);
        }
        d.delete(7);

        let files = storage.list().unwrap();
        assert!(
            files.iter().any(|f| f.starts_with("psnap-")),
            "paged snapshot written: {files:?}"
        );
        assert!(
            !files.iter().any(|f| f.starts_with("snap-")),
            "no sorted snapshot dual-written: {files:?}"
        );
        assert!(
            !files.iter().any(|f| f.contains("wal-00000000")),
            "generation-0 segments pruned: {files:?}"
        );

        let crashed = Arc::new(storage.crash_durable_only());
        let (mut d2, report) = open_paged(&crashed);
        assert_eq!(report.snapshot_entries, 500);
        assert_eq!(report.snapshot_lsn, 500);
        assert_eq!(report.tail_records, 101);
        assert_eq!(d2.len(), 599);
        assert_eq!(d2.get(7), None);
        assert_eq!(d2.get(599), Some(1797));
        assert!(d2.inner().is_paged());
        d2.inner_mut().check_invariants().unwrap();
    }

    #[test]
    fn corrupt_psnap_falls_back_to_previous_generation() {
        let storage = Arc::new(MemStorage::new());
        let (mut d, _) = open_paged(&storage);
        d.insert_batch(&(0..200u64).map(|k| (k, k)).collect::<Vec<_>>());
        d.checkpoint_paged().unwrap();
        d.insert_batch(&(200..400u64).map(|k| (k, k)).collect::<Vec<_>>());
        // Keep generation 1 around so recovery has somewhere to fall.
        d.config.prune_on_checkpoint = false;
        d.checkpoint_paged().unwrap();

        // Flip one byte deep inside the newest psnap's page area: the
        // per-page CRC sweep must reject the whole candidate, never
        // silently apply a torn page.
        let name = "psnap-00000002.qpsf";
        let mut bytes = storage.read(name).unwrap();
        let at = bytes.len() - 40;
        bytes[at] ^= 0x01;
        storage.remove(name).unwrap();
        storage.install(name, bytes);

        let crashed = Arc::new(storage.crash_durable_only());
        let (mut d2, report) = open_paged(&crashed);
        assert_eq!(report.rejected_snapshots, 1);
        assert_eq!(report.snapshot_entries, 200, "fell back to generation 1");
        // Generation 2's WAL segments replay nothing (they start past the
        // rejected snapshot), but generation 1's tail still covers the
        // second batch.
        assert_eq!(d2.len(), 400);
        assert_eq!(d2.get(399), Some(399));
    }

    #[test]
    fn open_paged_reads_legacy_sorted_snapshots() {
        let storage = Arc::new(MemStorage::new());
        // A pre-paged deployment: sorted snapshot + WAL tail.
        let (mut d, _) = open(&storage, DurabilityConfig::group_commit());
        d.insert_batch(&(0..300u64).map(|k| (k, k + 1)).collect::<Vec<_>>());
        d.checkpoint::<u64, u64>().unwrap();
        d.insert(300, 301);

        // The same directory reopened paged: qsnp bulk-loads, tail replays.
        let crashed = Arc::new(storage.crash_durable_only());
        let (mut d2, report) = open_paged(&crashed);
        assert_eq!(report.snapshot_entries, 300);
        assert_eq!(report.tail_records, 1);
        assert_eq!(d2.len(), 301);
        assert!(d2.inner().is_paged());
        // And the next checkpoint upgrades the directory to psnap.
        d2.checkpoint_paged().unwrap();
        let files = storage_list(&crashed);
        assert!(files.iter().any(|f| f.starts_with("psnap-")));
        assert!(
            !files.iter().any(|f| f.starts_with("snap-")),
            "superseded sorted snapshot pruned: {files:?}"
        );
    }

    fn storage_list(storage: &Arc<MemStorage>) -> Vec<String> {
        Storage::list(&**storage).unwrap()
    }

    #[test]
    fn open_paged_rejects_arena_config() {
        let storage = Arc::new(MemStorage::new());
        let err = match Durable::<BpTree<u64, u64>>::open_paged(
            storage as Arc<dyn Storage>,
            DurabilityConfig::group_commit(),
            FastPathMode::Pole,
            TreeConfig::small(16),
        ) {
            Err(err) => err,
            Ok(_) => panic!("arena config must be rejected"),
        };
        assert_eq!(err.kind(), "config");
    }

    #[test]
    fn checkpoint_paged_rejects_arena_tree() {
        let storage = Arc::new(MemStorage::new());
        let (mut d, _) = open(&storage, DurabilityConfig::group_commit());
        d.insert(1, 1);
        let err = d.checkpoint_paged().unwrap_err();
        assert_eq!(err.kind(), "config");
    }

    #[test]
    fn recovered_bptree_honours_bulk_fill() {
        let storage = Arc::new(MemStorage::new());
        let config = TreeConfig::small(16).with_bulk_fill(0.7);
        let build = bptree_builder::<u64, u64>(FastPathMode::Pole, config.clone());
        let (mut d, _) = Durable::open(
            storage.clone() as Arc<dyn Storage>,
            DurabilityConfig::group_commit(),
            build,
        )
        .unwrap();
        let batch: Vec<(u64, u64)> = (0..2000u64).map(|k| (k, k)).collect();
        d.insert_batch(&batch);
        d.checkpoint::<u64, u64>().unwrap();

        let crashed = Arc::new(storage.crash_durable_only());
        let (d2, report) = Durable::open(
            crashed as Arc<dyn Storage>,
            DurabilityConfig::group_commit(),
            bptree_builder::<u64, u64>(FastPathMode::Pole, config),
        )
        .unwrap();
        assert_eq!(report.snapshot_entries, 2000);
        let occ = d2.inner().memory_report().avg_leaf_occupancy;
        assert!(
            (0.6..0.8).contains(&occ),
            "recovered occupancy {occ} must match the configured 0.7 fill"
        );
    }

    #[test]
    fn durable_concurrent_tree_shared_writers() {
        let storage = Arc::new(MemStorage::new());
        let (d, _) = Durable::open(
            storage.clone() as Arc<dyn Storage>,
            DurabilityConfig::group_commit(),
            concurrent_builder::<u64, u64>(ConcConfig::small(32)),
        )
        .unwrap();
        let d = Arc::new(d);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let d = d.clone();
                scope.spawn(move || {
                    for i in 0..200u64 {
                        d.insert_shared(t * 10_000 + i, i);
                    }
                });
            }
        });
        assert_eq!(d.tree().len(), 800);

        let crashed = Arc::new(storage.crash_durable_only());
        let (d2, report) = Durable::open(
            crashed as Arc<dyn Storage>,
            DurabilityConfig::group_commit(),
            concurrent_builder::<u64, u64>(ConcConfig::small(32)),
        )
        .unwrap();
        assert_eq!(report.recovered_lsn, 800, "every acked insert is durable");
        assert_eq!(d2.tree().len(), 800);
        d2.tree().check_consistency().unwrap();
    }

    #[test]
    fn apply_tail_batches_insert_runs() {
        let mut t = Variant::Quit.build::<u64, u64>(TreeConfig::small(16));
        let tail: Vec<WalOp<u64, u64>> = (0..100u64)
            .map(|k| WalOp::Insert(k, k))
            .chain(std::iter::once(WalOp::Delete(5)))
            .chain((100..200u64).map(|k| WalOp::Insert(k, k)))
            .collect();
        let applied = apply_tail(&mut t, &tail);
        assert_eq!(applied, 201);
        assert_eq!(t.len(), 199);
        let m = t.metrics_registry().snapshot();
        assert!(
            m.fast_inserts > m.top_inserts,
            "sorted tail must ride the fast path: {} fast vs {} top",
            m.fast_inserts,
            m.top_inserts
        );
    }
}

//! WAL record framing: CRC32-protected, LSN-stamped, fixed-width encoded.
//!
//! Every record in a segment is one *frame*:
//!
//! ```text
//! ┌────────────┬────────────┬───────────────────────────────┐
//! │ len  (u32) │ crc  (u32) │ payload (len bytes)           │
//! │ LE         │ LE         │ ┌─────────┬──────┬──────────┐ │
//! │            │            │ │ lsn u64 │ kind │ body     │ │
//! │            │            │ │ LE      │ u8   │ K [+ V]  │ │
//! │            │            │ └─────────┴──────┴──────────┘ │
//! └────────────┴────────────┴───────────────────────────────┘
//! ```
//!
//! `crc` covers exactly the payload, so a torn append (partial frame at the
//! end of a segment) is detected by either a short length word, a short
//! payload, or a CRC mismatch — recovery stops at the last intact frame.
//! `kind` is 1 for insert (`body = key ‖ value`) and 2 for delete
//! (`body = key`); widths come from [`WalCodec`], so decoding never guesses.

use quit_core::OrderedF64;

/// Fixed-width, byte-order-independent encoding for WAL keys and values.
///
/// The WAL stores keys and values inline in frames, so both must encode to
/// a fixed number of little-endian bytes. Implementations exist for the
/// primitive integers and [`OrderedF64`] — exactly the types that satisfy
/// `quit-core`'s `Key` contract — plus anything a deployment adds.
pub trait WalCodec: Sized {
    /// Encoded width in bytes. Frames embed no per-record type info, so the
    /// width must be a compile-time constant.
    const WIDTH: usize;

    /// Appends exactly [`WIDTH`](Self::WIDTH) little-endian bytes to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes from exactly [`WIDTH`](Self::WIDTH) bytes (the slice is
    /// guaranteed to be that long and CRC-validated by the framing layer).
    fn decode_from(bytes: &[u8]) -> Self;
}

macro_rules! int_codec {
    ($($t:ty),* $(,)?) => {$(
        impl WalCodec for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();

            #[inline]
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn decode_from(bytes: &[u8]) -> Self {
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                buf.copy_from_slice(bytes);
                <$t>::from_le_bytes(buf)
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl WalCodec for OrderedF64 {
    const WIDTH: usize = 8;

    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }

    #[inline]
    fn decode_from(bytes: &[u8]) -> Self {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        // CRC-validated bytes can only hold what was encoded, and an
        // `OrderedF64` cannot be constructed around NaN — so this cannot
        // panic on data the framing layer accepted.
        OrderedF64::new(f64::from_le_bytes(buf))
    }
}

/// One logged mutation. The WAL records the two `SortedIndex`
/// mutations plus the five transaction records (`Txn*`); lookups and
/// scans are never logged.
///
/// The `Txn*` variants are produced only by `TxnStore`'s commit path,
/// which appends a whole commit group (`TxnBegin`, the `TxnWrite`/
/// `TxnDelete` intents, then `TxnCommit`) in one `Wal::append` call —
/// contiguous LSNs, one flush. Recovery buffers intents per transaction
/// id and applies them only when the matching `TxnCommit` is seen, so a
/// crash mid-group replays none of the transaction's writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp<K, V> {
    /// `insert(key, value)` — duplicates allowed and preserved in order.
    Insert(K, V),
    /// `delete(key)` — replays as a no-op if the key is absent, so logging
    /// a miss-delete is harmless (and the `Durable` wrapper always logs
    /// deletes without a read-before-write).
    Delete(K),
    /// Transaction `tid` starts its commit group.
    TxnBegin(u64),
    /// Transaction `tid` intends to write `key = value`.
    TxnWrite(u64, K, V),
    /// Transaction `tid` intends to delete `key` (MVCC tombstone).
    TxnDelete(u64, K),
    /// Transaction `tid` commits at timestamp `commit_ts`: every buffered
    /// intent becomes visible atomically at this timestamp on replay.
    TxnCommit(u64, u64),
    /// Transaction `tid` aborts; replay discards its buffered intents.
    /// Never written by the normal commit path (intents are only logged
    /// once commit is decided) but kept in the format so future
    /// early-logging strategies stay wire-compatible.
    TxnAbort(u64),
}

pub(crate) const KIND_INSERT: u8 = 1;
pub(crate) const KIND_DELETE: u8 = 2;
pub(crate) const KIND_TXN_BEGIN: u8 = 3;
pub(crate) const KIND_TXN_WRITE: u8 = 4;
pub(crate) const KIND_TXN_DELETE: u8 = 5;
pub(crate) const KIND_TXN_COMMIT: u8 = 6;
pub(crate) const KIND_TXN_ABORT: u8 = 7;

/// `len` + `crc` words preceding every payload.
pub(crate) const FRAME_HEADER: usize = 8;

/// Upper bound on a single payload; anything larger in a length word means
/// the word is garbage (torn write), not a real record.
pub(crate) const MAX_PAYLOAD: usize = 1 << 20;

const CRC_POLY: u32 = 0xEDB8_8320; // reflected IEEE 802.3

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                CRC_POLY ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE, reflected) over `bytes` — the standard zlib/Ethernet
/// polynomial, table-driven, no dependencies.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends one encoded frame for `op` at `lsn` to `out`.
pub(crate) fn encode_frame<K: WalCodec, V: WalCodec>(
    lsn: u64,
    op: &WalOp<K, V>,
    out: &mut Vec<u8>,
) {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER]); // len + crc, patched below
    lsn.encode_into(out);
    match op {
        WalOp::Insert(k, v) => {
            out.push(KIND_INSERT);
            k.encode_into(out);
            v.encode_into(out);
        }
        WalOp::Delete(k) => {
            out.push(KIND_DELETE);
            k.encode_into(out);
        }
        WalOp::TxnBegin(tid) => {
            out.push(KIND_TXN_BEGIN);
            tid.encode_into(out);
        }
        WalOp::TxnWrite(tid, k, v) => {
            out.push(KIND_TXN_WRITE);
            tid.encode_into(out);
            k.encode_into(out);
            v.encode_into(out);
        }
        WalOp::TxnDelete(tid, k) => {
            out.push(KIND_TXN_DELETE);
            tid.encode_into(out);
            k.encode_into(out);
        }
        WalOp::TxnCommit(tid, commit_ts) => {
            out.push(KIND_TXN_COMMIT);
            tid.encode_into(out);
            commit_ts.encode_into(out);
        }
        WalOp::TxnAbort(tid) => {
            out.push(KIND_TXN_ABORT);
            tid.encode_into(out);
        }
    }
    let payload_at = start + FRAME_HEADER;
    let len = (out.len() - payload_at) as u32;

    #[cfg(not(feature = "inject-wal-bug"))]
    let crc = crc32(&out[payload_at..]);
    // Injected framing bug: Delete records are checksummed over one byte
    // too few, so their stored CRC never matches the decoder's — recovery
    // silently drops every delete at the torn-tail check, which the
    // crash-recovery differential fuzzer must detect and shrink.
    #[cfg(feature = "inject-wal-bug")]
    let crc = {
        let payload = &out[payload_at..];
        if payload.get(8) == Some(&KIND_DELETE) {
            crc32(&payload[..payload.len() - 1])
        } else {
            crc32(payload)
        }
    };

    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Outcome of decoding the frame starting at one byte offset.
pub(crate) enum FrameStep<K, V> {
    /// An intact frame; `next` is the offset of the following frame.
    Record {
        /// The record's log sequence number.
        lsn: u64,
        /// The decoded mutation.
        op: WalOp<K, V>,
        /// Byte offset just past this frame.
        next: usize,
    },
    /// Clean end: `pos` was exactly the end of the bytes.
    End,
    /// The bytes from `pos` on are not an intact frame (torn/corrupt tail).
    Torn(&'static str),
}

/// Decodes the frame starting at `pos`, never panicking on torn or corrupt
/// input — every malformation maps to [`FrameStep::Torn`].
pub(crate) fn decode_frame<K: WalCodec, V: WalCodec>(bytes: &[u8], pos: usize) -> FrameStep<K, V> {
    if pos == bytes.len() {
        return FrameStep::End;
    }
    if bytes.len() - pos < FRAME_HEADER {
        return FrameStep::Torn("truncated frame header");
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
    if !(9..=MAX_PAYLOAD).contains(&len) {
        return FrameStep::Torn("implausible frame length");
    }
    if bytes.len() - pos - FRAME_HEADER < len {
        return FrameStep::Torn("truncated frame payload");
    }
    let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
    if crc32(payload) != crc {
        return FrameStep::Torn("payload CRC mismatch");
    }
    let lsn = u64::decode_from(&payload[..8]);
    let body = &payload[9..];
    let op = match payload[8] {
        KIND_INSERT if body.len() == K::WIDTH + V::WIDTH => WalOp::Insert(
            K::decode_from(&body[..K::WIDTH]),
            V::decode_from(&body[K::WIDTH..]),
        ),
        KIND_DELETE if body.len() == K::WIDTH => WalOp::Delete(K::decode_from(body)),
        KIND_TXN_BEGIN if body.len() == 8 => WalOp::TxnBegin(u64::decode_from(body)),
        KIND_TXN_WRITE if body.len() == 8 + K::WIDTH + V::WIDTH => WalOp::TxnWrite(
            u64::decode_from(&body[..8]),
            K::decode_from(&body[8..8 + K::WIDTH]),
            V::decode_from(&body[8 + K::WIDTH..]),
        ),
        KIND_TXN_DELETE if body.len() == 8 + K::WIDTH => {
            WalOp::TxnDelete(u64::decode_from(&body[..8]), K::decode_from(&body[8..]))
        }
        KIND_TXN_COMMIT if body.len() == 16 => {
            WalOp::TxnCommit(u64::decode_from(&body[..8]), u64::decode_from(&body[8..]))
        }
        KIND_TXN_ABORT if body.len() == 8 => WalOp::TxnAbort(u64::decode_from(body)),
        _ => return FrameStep::Torn("unknown record kind or bad body width"),
    };
    FrameStep::Record {
        lsn,
        op,
        next: pos + FRAME_HEADER + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values (zlib-compatible).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn int_and_float_codecs_roundtrip() {
        let mut buf = Vec::new();
        0xDEAD_BEEF_u64.encode_into(&mut buf);
        assert_eq!(buf.len(), u64::WIDTH);
        assert_eq!(u64::decode_from(&buf), 0xDEAD_BEEF);

        let mut buf = Vec::new();
        (-42i32).encode_into(&mut buf);
        assert_eq!(i32::decode_from(&buf), -42);

        let mut buf = Vec::new();
        OrderedF64::new(-1.5).encode_into(&mut buf);
        assert_eq!(OrderedF64::decode_from(&buf), OrderedF64::new(-1.5));
    }

    #[cfg_attr(feature = "inject-wal-bug", ignore = "framing bug injected")]
    #[test]
    fn frame_roundtrip_insert_and_delete() {
        let mut buf = Vec::new();
        encode_frame::<u64, u64>(7, &WalOp::Insert(3, 30), &mut buf);
        encode_frame::<u64, u64>(8, &WalOp::Delete(3), &mut buf);
        let FrameStep::Record { lsn, op, next } = decode_frame::<u64, u64>(&buf, 0) else {
            panic!("first frame should decode");
        };
        assert_eq!((lsn, op), (7, WalOp::Insert(3, 30)));
        let FrameStep::Record { lsn, op, next } = decode_frame::<u64, u64>(&buf, next) else {
            panic!("second frame should decode");
        };
        assert_eq!((lsn, op), (8, WalOp::Delete(3)));
        assert!(matches!(
            decode_frame::<u64, u64>(&buf, next),
            FrameStep::End
        ));
    }

    #[test]
    fn txn_frames_roundtrip() {
        let ops: Vec<WalOp<u64, u64>> = vec![
            WalOp::TxnBegin(42),
            WalOp::TxnWrite(42, 7, 700),
            WalOp::TxnDelete(42, 9),
            WalOp::TxnCommit(42, 1001),
            WalOp::TxnAbort(43),
        ];
        let mut buf = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            encode_frame::<u64, u64>(i as u64 + 1, op, &mut buf);
        }
        let mut pos = 0;
        for (i, want) in ops.iter().enumerate() {
            let FrameStep::Record { lsn, op, next } = decode_frame::<u64, u64>(&buf, pos) else {
                panic!("txn frame {i} should decode");
            };
            assert_eq!(lsn, i as u64 + 1);
            assert_eq!(&op, want);
            pos = next;
        }
        assert!(matches!(
            decode_frame::<u64, u64>(&buf, pos),
            FrameStep::End
        ));
    }

    #[test]
    fn every_truncation_is_torn_never_panics() {
        let mut buf = Vec::new();
        encode_frame::<u64, u64>(1, &WalOp::Insert(10, 100), &mut buf);
        for cut in 1..buf.len() {
            assert!(
                matches!(decode_frame::<u64, u64>(&buf[..cut], 0), FrameStep::Torn(_)),
                "cut at {cut} must read as torn"
            );
        }
    }

    #[test]
    fn bitflips_are_torn() {
        let mut clean = Vec::new();
        encode_frame::<u64, u64>(1, &WalOp::Insert(10, 100), &mut clean);
        for bit in 0..clean.len() * 8 {
            let mut buf = clean.clone();
            buf[bit / 8] ^= 1 << (bit % 8);
            // A flipped frame either fails to decode or (flips confined to
            // the length word that still parse) never decodes to the
            // original record *with a valid CRC*.
            if let FrameStep::Record { lsn, op, .. } = decode_frame::<u64, u64>(&buf, 0) {
                panic!("bit {bit}: corrupt frame decoded as lsn={lsn} op={op:?}");
            }
        }
    }

    #[cfg(feature = "inject-wal-bug")]
    #[test]
    fn injected_bug_breaks_delete_frames_only() {
        let mut buf = Vec::new();
        encode_frame::<u64, u64>(1, &WalOp::Insert(1, 10), &mut buf);
        let FrameStep::Record { next, .. } = decode_frame::<u64, u64>(&buf, 0) else {
            panic!("insert frames stay intact under the injected bug");
        };
        let mut buf2 = Vec::new();
        encode_frame::<u64, u64>(2, &WalOp::Delete(1), &mut buf2);
        assert!(matches!(
            decode_frame::<u64, u64>(&buf2, 0),
            FrameStep::Torn(_)
        ));
        let _ = next;
    }
}

//! [`TxnStore`]: snapshot-isolation transactions over an
//! [`MvccTree`], committed through the group-commit WAL.
//!
//! # Protocol
//!
//! *Begin* takes a snapshot timestamp from the [oracle](TsOracle
//! docs below): the highest commit timestamp whose writes are guaranteed
//! applied. Reads resolve against that snapshot; writes buffer in the
//! transaction until commit — nothing touches the tree early, so abort
//! is free and readers never see uncommitted intents.
//!
//! *Commit* is first-committer-wins snapshot isolation:
//!
//! 1. lock the write-set's stripes (deduplicated, stripe-ordered —
//!    deadlock-free; the 64-way stripe manager is `MvccTree`'s, seeded
//!    from PR 5's shared-path ordering stripes);
//! 2. validate: any write key whose newest version committed after our
//!    snapshot is a lost-update hazard → [`Error::Conflict`], abort;
//! 3. allocate the commit timestamp (registered in-flight);
//! 4. append the whole commit group — `TxnBegin`, one
//!    `TxnWrite`/`TxnDelete` per key, `TxnCommit` — in **one**
//!    `Wal::append` call: contiguous LSNs, one buffer flush, never
//!    split across a group-commit boundary;
//! 5. apply the versions to the tree (still under the stripes, so WAL
//!    order ≡ apply order per key, exactly PR 5's invariant);
//! 6. release the stripes, publish the timestamp (readers may now get
//!    snapshots covering it), and only then await the group fsync.
//!
//! Because intents hit the WAL only inside a decided commit group,
//! recovery is a pure buffer-then-apply: `TxnWrite`/`TxnDelete` records
//! are buffered per transaction id and applied — atomically, at the
//! recorded commit timestamp — when their `TxnCommit` arrives. A crash
//! anywhere mid-group leaves no `TxnCommit`, so none of that
//! transaction's writes replay: all-or-nothing by construction.
//!
//! # Why readers can trust their snapshot
//!
//! Commit timestamps are allocated *before* the writes are applied, and
//! two commits on disjoint stripes race freely — so "the clock says 7"
//! does not mean commit 7's writes are readable. The oracle therefore
//! tracks in-flight commits and publishes a separate *visible*
//! watermark: the largest timestamp `t` such that every commit `<= t`
//! has finished applying. Snapshots come from the visible watermark, so
//! a reader's snapshot never covers a half-applied commit, and version
//! visibility (`newest commit_ts <= snapshot`) is exact.
//!
//! # GC
//!
//! Once commits have superseded `gc_every` existing versions (and on
//! [`TxnStore::gc`]) versions unreachable by the oldest live snapshot
//! are pruned chain-by-chain — insert-only ingest accumulates no
//! garbage and triggers no sweeps.
//! The watermark is `min(oldest registered snapshot, visible)`, and
//! snapshot registration is atomic with watermark computation (both
//! hold the registry lock), so a just-beginning reader can never slip
//! under a concurrent collector.

use crate::durable::{DurabilityConfig, DurabilityLevel, RecoveryReport};
use crate::frame::WalCodec;
use crate::snapshot::load_best_snapshot;
use crate::storage::Storage;
use crate::wal::{scan_wal, Lsn, Wal};
use crate::WalOp;
use quit_concurrent::{ConcConfig, MvccTree};
use quit_core::{Error, Key, Result, StatsSnapshot};
use std::collections::{BTreeMap, HashMap};
use std::ops::{Bound, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Timestamp oracle: allocates commit timestamps and publishes the
/// *visible* watermark reader snapshots are taken from (see the module
/// docs for why the two are distinct).
struct TsOracle {
    /// Last allocated commit timestamp.
    clock: AtomicU64,
    /// Every commit `<= visible` has finished applying.
    visible: AtomicU64,
    /// Allocated-but-not-yet-applied commit timestamps.
    inflight: Mutex<std::collections::BTreeSet<u64>>,
}

impl TsOracle {
    fn new(start: u64) -> Self {
        TsOracle {
            clock: AtomicU64::new(start),
            visible: AtomicU64::new(start),
            inflight: Mutex::new(std::collections::BTreeSet::new()),
        }
    }

    /// The snapshot timestamp a beginning reader should use.
    fn snapshot(&self) -> u64 {
        self.visible.load(Ordering::Acquire)
    }

    /// Allocates the next commit timestamp and marks it in-flight.
    fn begin_commit(&self) -> u64 {
        let mut inflight = self.inflight.lock().unwrap();
        let ts = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        inflight.insert(ts);
        ts
    }

    /// Marks `ts` applied (or abandoned) and advances the visible
    /// watermark as far as the remaining in-flight set allows.
    fn finish_commit(&self, ts: u64) {
        let mut inflight = self.inflight.lock().unwrap();
        inflight.remove(&ts);
        let frontier = match inflight.first() {
            Some(&oldest) => oldest - 1,
            None => self.clock.load(Ordering::Relaxed),
        };
        // Monotonic publish: a stale frontier from a racing finisher
        // must never move `visible` backwards.
        let mut cur = self.visible.load(Ordering::Relaxed);
        while frontier > cur {
            match self.visible.compare_exchange_weak(
                cur,
                frontier,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A commit-timestamped snapshot value: `(commit_ts, value)`, the value
/// type of `TxnStore` checkpoint snapshots — per-key commit timestamps
/// must survive a restart or post-recovery conflict detection would
/// forget history.
struct Stamped<V>(u64, V);

impl<V: WalCodec> WalCodec for Stamped<V> {
    const WIDTH: usize = 8 + V::WIDTH;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }

    fn decode_from(bytes: &[u8]) -> Self {
        Stamped(u64::decode_from(&bytes[..8]), V::decode_from(&bytes[8..]))
    }
}

/// Configuration for [`TxnStore`]: inner-tree geometry, durability
/// knobs, and the GC cadence.
#[derive(Clone, Debug)]
pub struct TxnConfig {
    /// Inner [`MvccTree`] configuration (layout, search kind, OLC).
    pub tree: ConcConfig,
    /// WAL / snapshot / group-commit knobs.
    pub durability: DurabilityConfig,
    /// Run the version GC once commits have superseded this many
    /// existing versions (`0` = only on explicit [`TxnStore::gc`]
    /// calls). Counting garbage rather than commits keeps insert-only
    /// ingest free of pointless full-tree sweeps.
    pub gc_every: u64,
}

impl Default for TxnConfig {
    fn default() -> Self {
        TxnConfig {
            tree: ConcConfig::paper_default(),
            durability: DurabilityConfig::group_commit(),
            gc_every: 256,
        }
    }
}

impl TxnConfig {
    /// Builder-style override of the tree configuration.
    pub fn with_tree(mut self, tree: ConcConfig) -> Self {
        self.tree = tree;
        self
    }

    /// Builder-style override of the durability configuration.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }

    /// Builder-style override of the GC cadence.
    pub fn with_gc_every(mut self, every: u64) -> Self {
        self.gc_every = every;
        self
    }
}

/// Counters describing a [`TxnStore`]'s transactional history.
#[derive(Clone, Copy, Debug, Default)]
pub struct TxnStats {
    /// Committed transactions (auto-commit single ops included).
    pub commits: u64,
    /// Commits refused by first-committer-wins validation.
    pub conflicts: u64,
    /// Transactions that ended without committing (explicit aborts,
    /// conflict losers, and dropped handles).
    pub aborts: u64,
    /// Versions reclaimed by the GC so far.
    pub gc_reclaimed: u64,
    /// Keys whose newest version is a live value.
    pub live_keys: u64,
}

/// A multi-version, transactional, durable key-value store: snapshot
/// isolation over [`MvccTree`], first-committer-wins conflict
/// detection, WAL commit groups with atomic recovery. See the module
/// docs for the protocol.
///
/// All transaction traffic goes through `&self` — share a `TxnStore`
/// across threads with an [`Arc`]. [`checkpoint`](Self::checkpoint)
/// also takes `&self`: it quiesces committers through an internal gate
/// instead of demanding exclusivity.
pub struct TxnStore<K, V>
where
    K: Key + WalCodec,
    V: Clone + WalCodec,
{
    mvcc: MvccTree<K, V>,
    wal: Wal,
    config: TxnConfig,
    oracle: TsOracle,
    /// Active snapshot registry: `snapshot_ts -> reader count`. Guards
    /// the GC watermark (see module docs).
    snapshots: Mutex<BTreeMap<u64, usize>>,
    /// Commits hold `read`; checkpoint holds `write` to quiesce the WAL.
    commit_gate: RwLock<()>,
    next_tid: AtomicU64,
    live: AtomicU64,
    commits: AtomicU64,
    conflicts: AtomicU64,
    aborts: AtomicU64,
    gc_reclaimed: AtomicU64,
    garbage_since_gc: AtomicU64,
}

impl<K, V> TxnStore<K, V>
where
    K: Key + WalCodec,
    V: Clone + WalCodec,
{
    /// Opens (or creates) a transactional store on `storage`: loads the
    /// newest valid timestamped snapshot, bulk-builds the version tree,
    /// replays the WAL tail with commit atomicity (a transaction's
    /// writes apply only if its `TxnCommit` record survived — all or
    /// none), and resumes the timestamp clock past everything recovered.
    ///
    /// Plain `Insert`/`Delete` records in the tail (a WAL written by a
    /// pre-0.9 `Durable`) replay as synthetic single-op commits in log
    /// order, so upgrading a directory in place works.
    pub fn open(storage: Arc<dyn Storage>, config: TxnConfig) -> Result<(Self, RecoveryReport)> {
        if !matches!(config.tree.storage, quit_core::StorageKind::Arena) {
            return Err(quit_core::Error::config(
                "the concurrent transactional tree supports only StorageKind::Arena; \
                 for paged storage use Durable::open_paged",
            ));
        }
        let t0 = Instant::now();
        let ((snap_generation, snapshot_lsn, entries), rejected_snapshots) =
            load_best_snapshot::<K, Stamped<V>>(&*storage)?;
        let snapshot_entries = entries.len();
        let mut max_ts = entries.iter().map(|(_, s)| s.0).max().unwrap_or(0);
        let scan = scan_wal::<K, V>(&*storage, snapshot_lsn, snap_generation)?;

        let mvcc = MvccTree::bulk_load(
            config.tree.clone(),
            entries
                .into_iter()
                .map(|(k, Stamped(ts, v))| (k, ts, v))
                .collect(),
        );
        let mut live = snapshot_entries as u64;
        let mut max_tid = 0u64;
        let mut applied = 0usize;
        // Buffered intents of transactions whose commit record hasn't
        // been seen yet. `TxnBegin` *resets* the slot: a tid reused
        // after a crash must not inherit the dead transaction's intents.
        let mut pending: HashMap<u64, Vec<(K, Option<V>)>> = HashMap::new();
        let mut apply = |mvcc: &MvccTree<K, V>, key: K, ts: u64, w: Option<V>| {
            let writing = w.is_some();
            let prev_live = mvcc.apply(key, ts, w);
            match (prev_live, writing) {
                (false, true) => live += 1,
                (true, false) => live -= 1,
                _ => {}
            }
            applied += 1;
        };
        for op in scan.tail {
            match op {
                WalOp::Insert(k, v) => {
                    max_ts += 1;
                    apply(&mvcc, k, max_ts, Some(v));
                }
                WalOp::Delete(k) => {
                    max_ts += 1;
                    apply(&mvcc, k, max_ts, None);
                }
                WalOp::TxnBegin(tid) => {
                    max_tid = max_tid.max(tid);
                    pending.insert(tid, Vec::new());
                }
                WalOp::TxnWrite(tid, k, v) => {
                    max_tid = max_tid.max(tid);
                    pending.entry(tid).or_default().push((k, Some(v)));
                }
                WalOp::TxnDelete(tid, k) => {
                    max_tid = max_tid.max(tid);
                    pending.entry(tid).or_default().push((k, None));
                }
                WalOp::TxnCommit(tid, ts) => {
                    max_tid = max_tid.max(tid);
                    if let Some(writes) = pending.remove(&tid) {
                        for (k, w) in writes {
                            apply(&mvcc, k, ts, w);
                        }
                    }
                    max_ts = max_ts.max(ts);
                }
                WalOp::TxnAbort(tid) => {
                    max_tid = max_tid.max(tid);
                    pending.remove(&tid);
                }
            }
        }
        // Anything still pending lost its commit record to the crash:
        // dropped, atomically invisible.
        drop(pending);

        let wal = Wal::resume(
            storage,
            config.durability.tuning(),
            scan.resume_generation,
            scan.resume_seq,
            scan.last_lsn + 1,
        );
        let elapsed = t0.elapsed();
        wal.metrics()
            .recovery_latency
            .record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        let report = RecoveryReport {
            snapshot_entries,
            snapshot_lsn,
            tail_records: applied,
            recovered_lsn: scan.last_lsn,
            torn_tail: scan.torn,
            stale_segments: scan.stale_segments,
            rejected_snapshots,
            elapsed,
        };
        Ok((
            TxnStore {
                mvcc,
                wal,
                config,
                oracle: TsOracle::new(max_ts),
                snapshots: Mutex::new(BTreeMap::new()),
                commit_gate: RwLock::new(()),
                next_tid: AtomicU64::new(max_tid),
                live: AtomicU64::new(live),
                commits: AtomicU64::new(0),
                conflicts: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                gc_reclaimed: AtomicU64::new(0),
                garbage_since_gc: AtomicU64::new(0),
            },
            report,
        ))
    }

    /// Begins a transaction at the current visible snapshot.
    pub fn begin(&self) -> Txn<'_, K, V> {
        // Snapshot choice and registration are atomic under the registry
        // lock, so a concurrent GC watermark can never exceed a snapshot
        // that is about to register (module docs, "GC").
        let snapshot_ts = {
            let mut snapshots = self.snapshots.lock().unwrap();
            let ts = self.oracle.snapshot();
            *snapshots.entry(ts).or_insert(0) += 1;
            ts
        };
        Txn {
            store: self,
            tid: self.next_tid.fetch_add(1, Ordering::Relaxed) + 1,
            snapshot_ts,
            writes: BTreeMap::new(),
            committed: false,
        }
    }

    fn unregister(&self, snapshot_ts: u64) {
        let mut snapshots = self.snapshots.lock().unwrap();
        if let Some(count) = snapshots.get_mut(&snapshot_ts) {
            *count -= 1;
            if *count == 0 {
                snapshots.remove(&snapshot_ts);
            }
        }
    }

    /// Auto-commit point read at the current visible snapshot.
    pub fn get(&self, key: K) -> Option<V> {
        self.mvcc.read_at(key, self.oracle.snapshot())
    }

    /// Auto-commit snapshot scan at the current visible snapshot.
    pub fn scan<R: RangeBounds<K>>(&self, bounds: R) -> Vec<(K, V)> {
        self.mvcc.scan_at(bounds, self.oracle.snapshot())
    }

    /// Auto-commit single-key insert: a blind one-write transaction.
    /// Blind single-key writes always win — retrying a one-write
    /// transaction until its snapshot catches up converges to exactly
    /// this — so the fast path commits directly (a two-record WAL group,
    /// no conflict check, no snapshot registration) and never returns
    /// [`Error::Conflict`]. Returns its commit timestamp.
    pub fn insert(&self, key: K, value: V) -> Result<u64> {
        self.commit_one(key, Some(value))
    }

    /// Commits a single blind write/delete as its own transaction:
    /// stripe-locked, timestamped, logged as a `TxnWrite`/`TxnDelete` +
    /// `TxnCommit` group (`TxnBegin` is omitted — recovery opens the
    /// per-tid buffer on the first intent record, and tids never reuse
    /// while an orphaned intent is still in the tail, because
    /// `next_tid` resumes past every tid the tail mentions).
    fn commit_one(&self, key: K, intent: Option<V>) -> Result<u64> {
        let _gate = self.commit_gate.read().unwrap();
        let guards = self.mvcc.lock_keys(std::slice::from_ref(&key));
        let commit_ts = self.oracle.begin_commit();
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed) + 1;
        let ops = [
            match intent.clone() {
                Some(v) => WalOp::TxnWrite(tid, key, v),
                None => WalOp::TxnDelete(tid, key),
            },
            WalOp::TxnCommit(tid, commit_ts),
        ];
        let lsn = match self.log_nowait(&ops) {
            Ok(lsn) => lsn,
            Err(e) => {
                drop(guards);
                self.oracle.finish_commit(commit_ts);
                return Err(e);
            }
        };
        let writing = intent.is_some();
        let prev_live = self.mvcc.apply(key, commit_ts, intent);
        match (prev_live, writing) {
            (false, true) => {
                self.live.fetch_add(1, Ordering::Relaxed);
            }
            (true, false) => {
                self.live.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
        drop(guards);
        self.oracle.finish_commit(commit_ts);
        self.commits.fetch_add(1, Ordering::Relaxed);
        drop(_gate);
        self.maybe_gc(u64::from(prev_live) + u64::from(!writing));
        if let Some(lsn) = lsn {
            self.wal.commit(lsn)?;
        }
        Ok(commit_ts)
    }

    /// Auto-commit single-key delete, returning the deleted value (as of
    /// the winning attempt's snapshot) if the key was live.
    pub fn delete(&self, key: K) -> Result<Option<V>> {
        loop {
            let mut txn = self.begin();
            let prev = txn.get(key);
            txn.delete(key);
            match txn.commit() {
                Err(Error::Conflict(_)) => continue,
                Err(e) => return Err(e),
                Ok(_) => return Ok(prev),
            }
        }
    }

    /// Number of keys whose newest committed version is a live value.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed) as usize
    }

    /// Whether no keys are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs a GC pass now: prunes every version unreachable from the
    /// oldest live snapshot (or the visible watermark when no reader is
    /// active). Returns the number of versions reclaimed.
    pub fn gc(&self) -> usize {
        let watermark = {
            let snapshots = self.snapshots.lock().unwrap();
            let visible = self.oracle.snapshot();
            snapshots
                .keys()
                .next()
                .map_or(visible, |&oldest| oldest.min(visible))
        };
        let reclaimed = self.mvcc.gc(watermark);
        self.gc_reclaimed
            .fetch_add(reclaimed as u64, Ordering::Relaxed);
        reclaimed
    }

    /// Threshold-driven GC: accumulates the number of versions this
    /// commit superseded (overwrites and tombstones — the only ops that
    /// create reclaimable garbage) and runs a pass once `gc_every` have
    /// piled up. Fresh-key inserts never trigger a sweep.
    fn maybe_gc(&self, superseded: u64) {
        if self.config.gc_every > 0
            && superseded > 0
            && self
                .garbage_since_gc
                .fetch_add(superseded, Ordering::Relaxed)
                + superseded
                >= self.config.gc_every
        {
            self.garbage_since_gc.store(0, Ordering::Relaxed);
            self.gc();
        }
    }

    /// Checkpoint: quiesces committers, writes every live key's newest
    /// version (commit-timestamped) as a sorted snapshot, rotates the
    /// WAL generation, and prunes superseded files per the durability
    /// config. After this, recovery is `bulk_load + (tiny) tail`.
    ///
    /// Version history below the newest live version is *not*
    /// checkpointed: no post-restart snapshot can predate the
    /// checkpoint, so that history is unreachable after a reopen.
    pub fn checkpoint(&self) -> Result<()> {
        let _quiesce = self.commit_gate.write().unwrap();
        let entries: Vec<(K, Stamped<V>)> = self
            .mvcc
            .latest_live()
            .into_iter()
            .map(|(k, ts, v)| (k, Stamped(ts, v)))
            .collect();
        self.wal.checkpoint(
            &entries,
            self.config.durability.snapshot_chunk,
            self.config.durability.prune_on_checkpoint,
        )
    }

    /// Blocks until everything logged so far is fsync-durable (the
    /// explicit durability point for `Buffered`-level configs).
    pub fn commit_all(&self) -> Result<()> {
        if self.config.durability.level == DurabilityLevel::Off {
            return Ok(());
        }
        self.wal.commit(self.wal.last_lsn())
    }

    /// Pushes any buffered WAL bytes to the OS (no fsync) — the
    /// crash-fuzzing hook, mirroring [`crate::Durable::flush`]: the full
    /// byte image must then recover every committed transaction, while
    /// arbitrary byte cuts may still tear mid-frame (or mid-group).
    pub fn flush(&self) -> Result<()> {
        if self.config.durability.level == DurabilityLevel::Off {
            return Ok(());
        }
        self.wal.flush()
    }

    /// Transactional counters: commits, conflicts, aborts, GC activity.
    pub fn txn_stats(&self) -> TxnStats {
        TxnStats {
            commits: self.commits.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            gc_reclaimed: self.gc_reclaimed.load(Ordering::Relaxed),
            live_keys: self.live.load(Ordering::Relaxed),
        }
    }

    /// Tree + WAL metrics (fast-path counters, WAL appends/fsyncs,
    /// group-commit and recovery histograms).
    pub fn metrics(&self) -> StatsSnapshot {
        let mut snap = self.mvcc.metrics();
        let wal = self.wal.metrics().snapshot();
        snap.wal_appends = wal.wal_appends;
        snap.wal_fsyncs = wal.wal_fsyncs;
        snap.group_commit_size = wal.group_commit_size;
        snap.recovery_latency = wal.recovery_latency;
        snap
    }

    /// The underlying multi-version tree (snapshot reads, consistency
    /// checks) — reads only; all writes must go through transactions.
    pub fn mvcc(&self) -> &MvccTree<K, V> {
        &self.mvcc
    }

    /// The active configuration.
    pub fn config(&self) -> &TxnConfig {
        &self.config
    }

    fn log_nowait(&self, ops: &[WalOp<K, V>]) -> Result<Option<Lsn>> {
        match self.config.durability.level {
            DurabilityLevel::Off => Ok(None),
            DurabilityLevel::Buffered => {
                self.wal.append(ops)?;
                Ok(None)
            }
            DurabilityLevel::GroupCommit => Ok(Some(self.wal.append(ops)?)),
        }
    }
}

/// One transaction over a [`TxnStore`]: snapshot reads, buffered
/// writes, first-committer-wins commit. Created by [`TxnStore::begin`];
/// dropping an uncommitted handle aborts it (free — no intent ever
/// touched the tree or the WAL).
pub struct Txn<'a, K, V>
where
    K: Key + WalCodec,
    V: Clone + WalCodec,
{
    store: &'a TxnStore<K, V>,
    tid: u64,
    snapshot_ts: u64,
    /// Buffered write intents: `Some` = write, `None` = delete. A
    /// `BTreeMap` so the commit group and overlayed scans are in key
    /// order deterministically.
    writes: BTreeMap<K, Option<V>>,
    committed: bool,
}

impl<K, V> Txn<'_, K, V>
where
    K: Key + WalCodec,
    V: Clone + WalCodec,
{
    /// This transaction's id (stable across its WAL records).
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// The snapshot timestamp all reads resolve against.
    pub fn snapshot_ts(&self) -> u64 {
        self.snapshot_ts
    }

    /// Snapshot read with read-your-writes: buffered intents win over
    /// the snapshot.
    pub fn get(&self, key: K) -> Option<V> {
        if let Some(intent) = self.writes.get(&key) {
            return intent.clone();
        }
        self.store.mvcc.read_at(key, self.snapshot_ts)
    }

    /// Buffers a write of `key = value`.
    pub fn insert(&mut self, key: K, value: V) {
        self.writes.insert(key, Some(value));
    }

    /// Buffers a delete of `key`.
    pub fn delete(&mut self, key: K) {
        self.writes.insert(key, None);
    }

    /// Snapshot range scan with read-your-writes overlay, in key order.
    pub fn range<R: RangeBounds<K>>(&self, bounds: R) -> Vec<(K, V)> {
        let start = bounds.start_bound().cloned();
        let end = bounds.end_bound().cloned();
        let mut image: BTreeMap<K, V> = self
            .store
            .mvcc
            .scan_at((start, end), self.snapshot_ts)
            .into_iter()
            .collect();
        for (&k, intent) in self.writes.range::<K, (Bound<K>, Bound<K>)>((start, end)) {
            match intent {
                Some(v) => {
                    image.insert(k, v.clone());
                }
                None => {
                    image.remove(&k);
                }
            }
        }
        image.into_iter().collect()
    }

    /// Number of buffered write intents.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Commits: validates first-committer-wins, logs the commit group
    /// atomically, applies the versions, returns the commit timestamp.
    /// A read-only transaction commits trivially at its snapshot.
    ///
    /// On [`Error::Conflict`] the transaction is rolled back (nothing
    /// was applied or logged); retry on a fresh snapshot. Any other
    /// error before the apply step likewise leaves no trace. An fsync
    /// failure *after* apply poisons the WAL and surfaces here, but the
    /// commit is already visible in memory — the standard group-commit
    /// contract (durability is only promised when `Ok` returns).
    pub fn commit(mut self) -> Result<u64> {
        if self.writes.is_empty() {
            self.committed = true;
            self.store.commits.fetch_add(1, Ordering::Relaxed);
            return Ok(self.snapshot_ts);
        }
        let store = self.store;
        let _gate = store.commit_gate.read().unwrap();
        let keys: Vec<K> = self.writes.keys().copied().collect();
        let guards = store.mvcc.lock_keys(&keys);

        // First-committer-wins validation: a newer committed version of
        // any write key means a concurrent transaction won.
        #[cfg(not(feature = "inject-txn-bug"))]
        for &key in &keys {
            if let Some(latest) = store.mvcc.latest_commit_ts(key) {
                if latest > self.snapshot_ts {
                    drop(guards);
                    store.conflicts.fetch_add(1, Ordering::Relaxed);
                    return Err(Error::conflict(format!(
                        "key committed at ts {latest} after snapshot {}",
                        self.snapshot_ts
                    )));
                }
            }
        }
        // Injected transaction bug: commit skips first-committer-wins
        // validation entirely, silently losing updates between
        // concurrent writers — the SI history checker must detect this
        // and shrink the offending history.
        #[cfg(feature = "inject-txn-bug")]
        let _ = &keys;

        let commit_ts = store.oracle.begin_commit();

        let mut ops: Vec<WalOp<K, V>> = Vec::with_capacity(self.writes.len() + 2);
        ops.push(WalOp::TxnBegin(self.tid));
        for (&key, intent) in &self.writes {
            ops.push(match intent {
                Some(v) => WalOp::TxnWrite(self.tid, key, v.clone()),
                None => WalOp::TxnDelete(self.tid, key),
            });
        }
        ops.push(WalOp::TxnCommit(self.tid, commit_ts));
        let lsn = match store.log_nowait(&ops) {
            Ok(lsn) => lsn,
            Err(e) => {
                // Nothing applied; the group may or may not have reached
                // the (now poisoned) WAL, but without a durable
                // TxnCommit recovery discards it either way.
                drop(guards);
                store.oracle.finish_commit(commit_ts);
                return Err(e);
            }
        };

        let mut superseded = 0u64;
        for (&key, intent) in &self.writes {
            let writing = intent.is_some();
            let prev_live = store.mvcc.apply(key, commit_ts, intent.clone());
            superseded += u64::from(prev_live) + u64::from(!writing);
            match (prev_live, writing) {
                (false, true) => {
                    store.live.fetch_add(1, Ordering::Relaxed);
                }
                (true, false) => {
                    store.live.fetch_sub(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        drop(guards);
        store.oracle.finish_commit(commit_ts);
        store.commits.fetch_add(1, Ordering::Relaxed);
        self.committed = true;
        drop(_gate);
        store.maybe_gc(superseded);

        if let Some(lsn) = lsn {
            store.wal.commit(lsn)?;
        }
        Ok(commit_ts)
    }

    /// Explicitly aborts. Equivalent to dropping the handle: buffered
    /// intents are discarded; nothing was logged or applied.
    pub fn abort(self) {
        // Drop does the bookkeeping.
    }
}

impl<K, V> Drop for Txn<'_, K, V>
where
    K: Key + WalCodec,
    V: Clone + WalCodec,
{
    fn drop(&mut self) {
        self.store.unregister(self.snapshot_ts);
        if !self.committed {
            self.store.aborts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn mem_store(gc_every: u64) -> TxnStore<u64, u64> {
        let storage = Arc::new(MemStorage::new()) as Arc<dyn Storage>;
        let (store, _) = TxnStore::open(
            storage,
            TxnConfig::default()
                .with_durability(DurabilityConfig::buffered())
                .with_gc_every(gc_every),
        )
        .unwrap();
        store
    }

    #[test]
    fn txn_reads_its_snapshot_not_later_commits() {
        let store = mem_store(0);
        store.insert(1, 10).unwrap();
        let reader = store.begin();
        assert_eq!(reader.get(1), Some(10));
        store.insert(1, 11).unwrap();
        store.insert(2, 20).unwrap();
        // Snapshot: still the old world.
        assert_eq!(reader.get(1), Some(10));
        assert_eq!(reader.get(2), None);
        assert_eq!(reader.range(..), vec![(1, 10)]);
        drop(reader);
        assert_eq!(store.get(1), Some(11));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn read_your_writes_and_overlayed_range() {
        let store = mem_store(0);
        store.insert(1, 10).unwrap();
        store.insert(2, 20).unwrap();
        let mut txn = store.begin();
        txn.insert(3, 30);
        txn.delete(1);
        txn.insert(2, 21);
        assert_eq!(txn.get(1), None);
        assert_eq!(txn.get(2), Some(21));
        assert_eq!(txn.get(3), Some(30));
        assert_eq!(txn.range(..), vec![(2, 21), (3, 30)]);
        // Nothing visible outside until commit.
        assert_eq!(store.scan(..), vec![(1, 10), (2, 20)]);
        txn.commit().unwrap();
        assert_eq!(store.scan(..), vec![(2, 21), (3, 30)]);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn first_committer_wins() {
        let store = mem_store(0);
        store.insert(7, 70).unwrap();
        let mut a = store.begin();
        let mut b = store.begin();
        a.insert(7, 71);
        b.insert(7, 72);
        assert!(a.commit().is_ok());
        let err = b.commit().unwrap_err();
        assert!(matches!(err, Error::Conflict(_)), "got {err:?}");
        assert_eq!(store.get(7), Some(71));
        let stats = store.txn_stats();
        assert_eq!(stats.conflicts, 1);
        assert_eq!(stats.aborts, 1);
    }

    #[test]
    fn disjoint_writers_both_commit() {
        let store = mem_store(0);
        let mut a = store.begin();
        let mut b = store.begin();
        a.insert(1, 100);
        b.insert(2, 200);
        a.commit().unwrap();
        b.commit().unwrap();
        assert_eq!(store.scan(..), vec![(1, 100), (2, 200)]);
    }

    #[test]
    fn blind_write_conflicts_too() {
        // FCW is about write sets, not read-modify-write: two blind
        // writers of the same key still conflict.
        let store = mem_store(0);
        let mut a = store.begin();
        let mut b = store.begin();
        a.insert(9, 1);
        b.insert(9, 2);
        b.commit().unwrap();
        assert!(matches!(a.commit(), Err(Error::Conflict(_))));
        assert_eq!(store.get(9), Some(2));
    }

    #[test]
    fn abort_leaves_no_trace() {
        let store = mem_store(0);
        store.insert(5, 50).unwrap();
        let mut txn = store.begin();
        txn.insert(5, 51);
        txn.insert(6, 60);
        txn.abort();
        assert_eq!(store.get(5), Some(50));
        assert_eq!(store.get(6), None);
        // And the next writer sees no conflict from the aborted intents.
        let mut txn = store.begin();
        txn.insert(5, 52);
        txn.commit().unwrap();
        assert_eq!(store.get(5), Some(52));
    }

    #[test]
    fn commit_groups_recover_atomically() {
        let storage = Arc::new(MemStorage::new());
        let dynstorage = Arc::clone(&storage) as Arc<dyn Storage>;
        let (store, _) = TxnStore::<u64, u64>::open(
            dynstorage,
            TxnConfig::default().with_durability(DurabilityConfig::buffered()),
        )
        .unwrap();
        let mut txn = store.begin();
        txn.insert(1, 10);
        txn.insert(2, 20);
        txn.insert(3, 30);
        txn.commit().unwrap();
        store.commit_all().unwrap();
        drop(store);
        let (again, report) = TxnStore::<u64, u64>::open(
            Arc::new(storage.crash_durable_only()) as Arc<dyn Storage>,
            TxnConfig::default(),
        )
        .unwrap();
        assert_eq!(report.tail_records, 3);
        assert_eq!(again.scan(..), vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(again.len(), 3);
    }

    #[test]
    fn torn_commit_group_replays_nothing() {
        let storage = Arc::new(MemStorage::new());
        let dynstorage = Arc::clone(&storage) as Arc<dyn Storage>;
        let (store, _) = TxnStore::<u64, u64>::open(
            dynstorage,
            TxnConfig::default().with_durability(DurabilityConfig::buffered()),
        )
        .unwrap();
        store.insert(1, 10).unwrap();
        store.commit_all().unwrap();
        let durable_after_first = storage.total_appended();
        let mut txn = store.begin();
        txn.insert(2, 20);
        txn.insert(3, 30);
        txn.commit().unwrap();
        store.commit_all().unwrap();
        let full = storage.total_appended();
        // Cut at every byte boundary inside the second commit group: the
        // group must be all (only at the very end) or nothing.
        for keep in durable_after_first..full {
            let (again, _) = TxnStore::<u64, u64>::open(
                Arc::new(storage.crash(keep)) as Arc<dyn Storage>,
                TxnConfig::default(),
            )
            .unwrap();
            let got = again.scan(..);
            assert!(
                got == vec![(1, 10)] || got == vec![(1, 10), (2, 20), (3, 30)],
                "cut at {keep}: partial transaction surfaced: {got:?}"
            );
        }
    }

    #[test]
    fn checkpoint_then_reopen_preserves_timestamps_for_fcw() {
        let storage = Arc::new(MemStorage::new());
        let dynstorage = Arc::clone(&storage) as Arc<dyn Storage>;
        let (store, _) = TxnStore::<u64, u64>::open(
            dynstorage,
            TxnConfig::default().with_durability(DurabilityConfig::buffered()),
        )
        .unwrap();
        for k in 0..100u64 {
            store.insert(k, k * 2).unwrap();
        }
        store.delete(50).unwrap();
        store.checkpoint().unwrap();
        store.insert(200, 1).unwrap();
        store.commit_all().unwrap();
        drop(store);
        let (again, report) = TxnStore::<u64, u64>::open(
            Arc::new(storage.crash_durable_only()) as Arc<dyn Storage>,
            TxnConfig::default(),
        )
        .unwrap();
        assert_eq!(report.snapshot_entries, 99);
        assert_eq!(report.tail_records, 1);
        assert_eq!(again.len(), 100);
        assert_eq!(again.get(50), None);
        assert_eq!(again.get(200), Some(1));
        // The clock resumed past every recovered timestamp: a fresh
        // write must get a strictly newer commit ts than anything
        // recovered (checked by MvccTree's chain-order debug assert and
        // the consistency check).
        again.insert(0, 999).unwrap();
        again.mvcc().check_consistency().unwrap();
    }

    #[test]
    fn gc_respects_oldest_live_snapshot() {
        let store = mem_store(0);
        store.insert(1, 10).unwrap();
        let old_reader = store.begin();
        store.insert(1, 11).unwrap();
        store.insert(1, 12).unwrap();
        // The old reader pins the watermark at its snapshot: the single
        // watermark is conservative, so everything the old reader can
        // (or later versions any reader could) reach survives.
        let reclaimed = store.gc();
        assert_eq!(reclaimed, 0);
        assert_eq!(old_reader.get(1), Some(10));
        drop(old_reader);
        // Watermark now advances to the visible frontier: versions 10
        // and 11 are unreachable by any future snapshot.
        let reclaimed = store.gc();
        assert_eq!(reclaimed, 2);
        assert_eq!(store.get(1), Some(12));
    }

    #[test]
    fn threshold_gc_fires_on_cadence() {
        let store = mem_store(4);
        for i in 0..20u64 {
            store.insert(1, i).unwrap();
        }
        assert!(
            store.txn_stats().gc_reclaimed >= 12,
            "periodic GC should have pruned most of the 20-version chain, got {}",
            store.txn_stats().gc_reclaimed
        );
    }

    #[test]
    fn plain_durable_wal_upgrades_in_place() {
        use crate::durable::{concurrent_builder, Durable};
        let storage = Arc::new(MemStorage::new());
        {
            let dynstorage = Arc::clone(&storage) as Arc<dyn Storage>;
            let (durable, _) = Durable::open(
                dynstorage,
                DurabilityConfig::buffered(),
                concurrent_builder::<u64, u64>(ConcConfig::paper_default()),
            )
            .unwrap();
            durable.insert_shared(1, 10);
            durable.insert_shared(2, 20);
            durable.delete_shared(1);
            durable.commit_all().unwrap();
        }
        let (store, report) = TxnStore::<u64, u64>::open(
            Arc::new(storage.crash_durable_only()) as Arc<dyn Storage>,
            TxnConfig::default(),
        )
        .unwrap();
        assert_eq!(report.tail_records, 3);
        assert_eq!(store.scan(..), vec![(2, 20)]);
        assert_eq!(store.len(), 1);
        // And transactions work on the upgraded directory.
        let mut txn = store.begin();
        txn.insert(3, 30);
        txn.commit().unwrap();
        assert_eq!(store.len(), 2);
    }
}

//! Differential tests across every index implementation in the workspace:
//! all five single-threaded variants, the SWARE SA-B+-tree, and the
//! concurrent tree must agree on query results for identical workloads,
//! because they only differ in *how* they ingest.

use quick_insertion_tree::bods::BodsSpec;
use quick_insertion_tree::quit_concurrent::{ConcConfig, ConcurrentTree};
use quick_insertion_tree::quit_core::{BpTree, TreeConfig, Variant};
use quick_insertion_tree::sware::{SaBpTree, SwareConfig};

fn workloads() -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("sorted", BodsSpec::new(30_000, 0.0, 1.0).generate()),
        ("near-sorted", BodsSpec::new(30_000, 0.05, 1.0).generate()),
        ("less-sorted", BodsSpec::new(30_000, 0.25, 1.0).generate()),
        ("scrambled", BodsSpec::new(30_000, 1.0, 1.0).generate()),
        ("small-L", BodsSpec::new(30_000, 0.10, 0.01).generate()),
        ("reversed", (0..30_000u64).rev().collect()),
    ]
}

#[test]
fn all_variants_agree_on_reads() {
    for (name, keys) in workloads() {
        let config = TreeConfig::small(32);
        let trees: Vec<(Variant, BpTree<u64, u64>)> = Variant::ALL
            .iter()
            .map(|&v| {
                let mut t = v.build::<u64, u64>(config.clone());
                for (i, &k) in keys.iter().enumerate() {
                    t.insert(k, i as u64);
                }
                (v, t)
            })
            .collect();

        for (v, t) in &trees {
            t.check_invariants()
                .unwrap_or_else(|e| panic!("{name}/{v:?}: {e}"));
            assert_eq!(t.len(), keys.len(), "{name}/{v:?} len");
        }

        // Point reads and ranges agree with the classic tree.
        let (_, reference) = &trees[0];
        let probes: Vec<u64> = (0..30_000u64).step_by(97).collect();
        let ranges = [(0u64, 100u64), (500, 1500), (29_000, 30_000), (0, 30_000)];
        for (v, t) in &trees[1..] {
            for &p in &probes {
                assert_eq!(
                    t.get(p).is_some(),
                    reference.get(p).is_some(),
                    "{name}/{v:?} get({p})"
                );
            }
            for &(s, e) in &ranges {
                let got: Vec<u64> = t.range(s..e).map(|(k, _)| k).collect();
                let want: Vec<u64> = reference.range(s..e).map(|(k, _)| k).collect();
                assert_eq!(got, want, "{name}/{v:?} range({s},{e})");
            }
        }
    }
}

#[test]
fn sware_agrees_with_classic_tree() {
    for (name, keys) in workloads() {
        let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::small(512, 32));
        let mut classic = Variant::Classic.build::<u64, u64>(TreeConfig::small(32));
        for (i, &k) in keys.iter().enumerate() {
            sa.insert(k, i as u64);
            classic.insert(k, i as u64);
        }
        assert_eq!(sa.len(), classic.len(), "{name} len");
        for p in (0..30_000u64).step_by(61) {
            assert_eq!(
                sa.get(p).is_some(),
                classic.get(p).is_some(),
                "{name} get({p})"
            );
        }
        for (s, e) in [(100u64, 400u64), (10_000, 12_000)] {
            let got: Vec<u64> = sa.range(s..e).iter().map(|x| x.0).collect();
            let want: Vec<u64> = classic.range(s..e).map(|(k, _)| k).collect();
            assert_eq!(got, want, "{name} range({s},{e})");
        }
        sa.tree().check_invariants().unwrap();
    }
}

#[test]
fn concurrent_tree_agrees_with_classic_tree() {
    for (name, keys) in workloads() {
        let conc: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::paper_default());
        let mut classic = Variant::Classic.build::<u64, u64>(TreeConfig::paper_default());
        for (i, &k) in keys.iter().enumerate() {
            conc.insert(k, i as u64);
            classic.insert(k, i as u64);
        }
        assert_eq!(conc.len(), classic.len(), "{name} len");
        for p in (0..30_000u64).step_by(61) {
            assert_eq!(
                conc.get(p).is_some(),
                classic.get(p).is_some(),
                "{name} get({p})"
            );
        }
        let got: Vec<u64> = conc.range(5_000..6_000).map(|(k, _)| k).collect();
        let want: Vec<u64> = classic.range(5_000..6_000).map(|(k, _)| k).collect();
        assert_eq!(got, want, "{name} range");
    }
}

#[test]
fn deletes_agree_across_variants() {
    let keys = BodsSpec::new(10_000, 0.10, 1.0).generate();
    let mut trees: Vec<(Variant, BpTree<u64, u64>)> = Variant::ALL
        .iter()
        .map(|&v| {
            let mut t = v.build::<u64, u64>(TreeConfig::small(16));
            for (i, &k) in keys.iter().enumerate() {
                t.insert(k, i as u64);
            }
            (v, t)
        })
        .collect();
    // Delete every third key, in the arrival order.
    for &k in keys.iter().step_by(3) {
        for (v, t) in &mut trees {
            assert!(t.delete(k).is_some(), "{v:?} delete({k})");
        }
    }
    for (v, t) in &trees {
        t.check_invariants()
            .unwrap_or_else(|e| panic!("{v:?}: {e}"));
    }
    for p in (0..10_000u64).step_by(41) {
        let expected = trees[0].1.contains_key(p);
        for (v, t) in &trees[1..] {
            assert_eq!(t.contains_key(p), expected, "{v:?} contains({p})");
        }
    }
}

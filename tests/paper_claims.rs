//! Executable checks of the paper's headline claims, at reduced scale.
//! These assert *shape* (who wins, direction of effects), not absolute
//! numbers — the quantitative side lives in the `quit-bench` binaries.

use quick_insertion_tree::bods::{point_lookup_keys, BodsSpec};
use quick_insertion_tree::quit_core::{TreeConfig, Variant};
use quick_insertion_tree::sware::{SaBpTree, SwareConfig};

fn build(v: Variant, keys: &[u64]) -> quick_insertion_tree::quit_core::BpTree<u64, u64> {
    let mut t = v.build::<u64, u64>(TreeConfig::paper_default());
    for (i, &k) in keys.iter().enumerate() {
        t.insert(k, i as u64);
    }
    t
}

/// §2 / Fig 3: the tail fast path collapses once data is slightly unsorted.
#[test]
fn tail_collapses_at_one_percent_disorder() {
    // The collapse sharpens with scale (out-of-order entries per leaf);
    // 1M entries at K=1% is already ~20 leaves' worth of outliers.
    let n = 1_000_000;
    let sorted = build(Variant::Tail, &BodsSpec::new(n, 0.0, 1.0).generate());
    assert!(sorted.stats().fast_insert_fraction() > 0.999);
    let near = build(Variant::Tail, &BodsSpec::new(n, 0.01, 1.0).generate());
    assert!(
        near.stats().fast_insert_fraction() < 0.10,
        "tail should be ~useless at K=1%, got {:.3}",
        near.stats().fast_insert_fraction()
    );
}

/// §3 / Eq 1: ℓiℓ fast-inserts track (1−k)² within a few points.
#[test]
fn lil_matches_analytic_model() {
    let n = 200_000;
    for k in [0.01, 0.05, 0.25, 0.50] {
        let t = build(Variant::Lil, &BodsSpec::new(n, k, 1.0).generate());
        let measured = t.stats().fast_insert_fraction();
        let model = (1.0 - k) * (1.0 - k);
        assert!(
            (measured - model).abs() < 0.05,
            "K={k}: measured {measured:.3} vs model {model:.3}"
        );
    }
}

/// §4 / Fig 9: QuIT approaches the ideal (one top-insert per out-of-order
/// entry) and beats ℓiℓ when data is less sorted.
#[test]
fn quit_beats_lil_at_low_sortedness() {
    let n = 200_000;
    for k in [0.25, 0.50] {
        let keys = BodsSpec::new(n, k, 1.0).generate();
        let lil = build(Variant::Lil, &keys);
        let quit = build(Variant::Quit, &keys);
        assert!(
            quit.stats().fast_insert_fraction() > lil.stats().fast_insert_fraction() + 0.05,
            "K={k}: QuIT {:.3} vs lil {:.3}",
            quit.stats().fast_insert_fraction(),
            lil.stats().fast_insert_fraction()
        );
    }
}

/// §4.3 / Table 2: ~2× space reduction on fully sorted data; parity on
/// scrambled data.
#[test]
fn quit_space_reduction() {
    let n = 300_000;
    let sorted = BodsSpec::new(n, 0.0, 1.0).generate();
    let classic = build(Variant::Classic, &sorted);
    let quit = build(Variant::Quit, &sorted);
    let ratio =
        classic.memory_report().paged_bytes as f64 / quit.memory_report().paged_bytes as f64;
    assert!(
        ratio > 1.8,
        "sorted-space reduction {ratio:.2} (paper: 1.96x)"
    );

    let scrambled = BodsSpec::new(n, 1.0, 1.0).generate();
    let classic = build(Variant::Classic, &scrambled);
    let quit = build(Variant::Quit, &scrambled);
    let ratio =
        classic.memory_report().paged_bytes as f64 / quit.memory_report().paged_bytes as f64;
    assert!(
        (0.85..1.15).contains(&ratio),
        "scrambled-space ratio {ratio:.2} (paper: ~1x)"
    );
}

/// §5.1 / Fig 10c: range scans touch fewer leaves in QuIT on near-sorted
/// ingests.
#[test]
fn quit_ranges_touch_fewer_leaves() {
    let n = 300_000;
    let keys = BodsSpec::new(n, 0.05, 1.0).generate();
    let classic = build(Variant::Classic, &keys);
    let quit = build(Variant::Quit, &keys);
    let mut leaf_c = 0u64;
    let mut leaf_q = 0u64;
    for start in (0..n as u64 - 3000).step_by(n / 50) {
        let rc = classic.range_with_stats(start..start + 3000);
        let rq = quit.range_with_stats(start..start + 3000);
        assert_eq!(rc.entries.len(), rq.entries.len());
        leaf_c += rc.leaf_accesses;
        leaf_q += rq.leaf_accesses;
    }
    // The paper reports up to 2x (1.3x average) at its occupancy gap; the
    // gap narrows at reduced N, so assert the direction with headroom.
    assert!(
        leaf_c as f64 / leaf_q as f64 > 1.10,
        "classic {leaf_c} vs quit {leaf_q}"
    );
}

/// §5.4 / Fig 14b: SWARE pays a point-lookup penalty for its buffer; QuIT
/// reads like a plain B+-tree (node accesses identical to classic).
#[test]
fn quit_has_no_read_penalty_but_sware_does() {
    let n = 100_000;
    let keys = BodsSpec::new(n, 0.05, 1.0).generate();
    let classic = build(Variant::Classic, &keys);
    let quit = build(Variant::Quit, &keys);
    let probes = point_lookup_keys(n, 5_000, 3);

    classic.stats().reset();
    quit.stats().reset();
    for &p in &probes {
        assert!(classic.get(p).is_some());
        assert!(quit.get(p).is_some());
    }
    let acc_c = classic.stats().lookup_node_accesses.get() as f64;
    let acc_q = quit.stats().lookup_node_accesses.get() as f64;
    // QuIT never touches more nodes than the classic tree (same height or
    // lower thanks to tighter packing).
    assert!(acc_q <= acc_c * 1.001, "classic {acc_c} vs quit {acc_q}");

    // SWARE answers correctly but must do buffer work on top of the tree.
    let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::for_data_size(n));
    for (i, &k) in keys.iter().enumerate() {
        sa.insert(k, i as u64);
    }
    let mut buffered_hits = 0;
    for &p in &probes {
        assert!(sa.get(p).is_some(), "SWARE must find {p}");
        buffered_hits = sa.stats().buffer_hits;
    }
    assert!(
        buffered_hits > 0,
        "with a 1% buffer some lookups must hit it"
    );
}

/// §5.2.2 / Table 3: the fast-insert fraction is stable across data sizes.
#[test]
fn fast_insert_fraction_is_scale_invariant() {
    let mut fractions = Vec::new();
    for n in [50_000usize, 100_000, 200_000] {
        let t = build(Variant::Quit, &BodsSpec::new(n, 0.05, 0.05).generate());
        fractions.push(t.stats().fast_insert_fraction());
    }
    let (min, max) = (
        fractions.iter().cloned().fold(f64::MAX, f64::min),
        fractions.iter().cloned().fold(f64::MIN, f64::max),
    );
    assert!(max - min < 0.03, "fractions vary too much: {fractions:?}");
}

/// Table 1: QuIT's extra metadata stays under 20 bytes.
#[test]
fn metadata_budget() {
    use quick_insertion_tree::quit_core::{FastPathMode, FastPathState};
    let lil = FastPathState::<u32>::metadata_bytes(FastPathMode::Lil);
    let pole = FastPathState::<u32>::metadata_bytes(FastPathMode::Pole);
    assert!(pole - lil < 20);
}

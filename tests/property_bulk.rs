//! Property-based tests for the bulk surface (bulk_load / append_sorted /
//! bulk_insert_run / insert_batch / delete_range), snapshot persistence,
//! and cursor navigation — each checked against straightforward models.

use proptest::prelude::*;
use quick_insertion_tree::quit_core::{BpTree, FastPathMode, TreeConfig, Variant};

fn sorted_entries(keys: &mut [u64]) -> Vec<(u64, u64)> {
    keys.sort_unstable();
    keys.iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bulk_load_equals_incremental(
        mut keys in prop::collection::vec(0..10_000u64, 0..800),
        fill_pct in 30u32..=100,
        cap in 4usize..40,
    ) {
        let entries = sorted_entries(&mut keys);
        let bulk: BpTree<u64, u64> = BpTree::bulk_load(
            FastPathMode::Pole,
            TreeConfig::small(cap),
            entries.clone(),
            fill_pct as f64 / 100.0,
        );
        let mut incr: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(cap));
        for &(k, v) in &entries {
            incr.insert(k, v);
        }
        bulk.check_invariants().unwrap();
        let a: Vec<u64> = bulk.iter().map(|e| e.0).collect();
        let b: Vec<u64> = incr.iter().map(|e| e.0).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn append_sorted_equals_inserts(
        mut base in prop::collection::vec(0..5_000u64, 1..400),
        run_len in 0usize..300,
    ) {
        let entries = sorted_entries(&mut base);
        let max = entries.last().map(|e| e.0).unwrap_or(0);
        let run: Vec<(u64, u64)> = (0..run_len as u64).map(|i| (max + i, i)).collect();

        let mut a: BpTree<u64, u64> =
            BpTree::bulk_load(FastPathMode::Pole, TreeConfig::small(8), entries.clone(), 1.0);
        a.append_sorted(run.clone());

        let mut b: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(8));
        for (k, v) in entries.into_iter().chain(run) {
            b.insert(k, v);
        }
        a.check_invariants().unwrap();
        prop_assert_eq!(a.len(), b.len());
        let ka: Vec<u64> = a.keys();
        let kb: Vec<u64> = b.keys();
        prop_assert_eq!(ka, kb);
    }

    #[test]
    fn bulk_insert_run_equals_inserts(
        mut base in prop::collection::vec(0..10_000u64, 0..500),
        mut run in prop::collection::vec(0..10_000u64, 0..500),
    ) {
        let mut a: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(8));
        let mut b: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(8));
        base.sort_unstable();
        for (i, &k) in base.iter().enumerate() {
            a.insert(k, i as u64);
            b.insert(k, i as u64);
        }
        run.sort_unstable();
        let run_entries: Vec<(u64, u64)> = run.iter().map(|&k| (k, k)).collect();
        a.bulk_insert_run(&run_entries);
        for &(k, v) in &run_entries {
            b.insert(k, v);
        }
        a.check_invariants().unwrap();
        prop_assert_eq!(a.len(), b.len());
        let ka: Vec<u64> = a.keys();
        let kb: Vec<u64> = b.keys();
        prop_assert_eq!(ka, kb);
    }

    #[test]
    fn delete_range_equals_model(
        keys in prop::collection::vec(0..2_000u64, 0..600),
        start in 0..2_000u64,
        width in 0..2_000u64,
    ) {
        let end = start.saturating_add(width);
        let mut t: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(6));
        for &k in &keys {
            t.insert(k, k);
        }
        let removed = t.delete_range(start, end);
        let expected_removed = keys.iter().filter(|&&k| (start..end).contains(&k)).count();
        prop_assert_eq!(removed, expected_removed);
        let mut expect: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|k| !(start..end).contains(k))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(t.keys(), expect);
        t.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_roundtrip_is_identity(
        keys in prop::collection::vec(0..5_000u64, 0..600),
        cap in 4usize..32,
    ) {
        let mut t: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(cap));
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u64);
        }
        let restored = BpTree::from_snapshot(t.to_snapshot());
        restored.check_invariants().unwrap();
        let a: Vec<(u64, u64)> = t.iter().map(|(k, v)| (k, *v)).collect();
        let b: Vec<(u64, u64)> = restored.iter().map(|(k, v)| (k, *v)).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cursor_scan_equals_range(
        keys in prop::collection::vec(0..1_000u64, 0..500),
        start in 0..1_100u64,
        width in 0..1_100u64,
    ) {
        let end = start.saturating_add(width);
        let mut t: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(6));
        for &k in &keys {
            t.insert(k, k);
        }
        let mut c = t.cursor_at(start);
        let mut via_cursor = Vec::new();
        while let Some((k, _)) = c.next() {
            if k >= end {
                break;
            }
            via_cursor.push(k);
        }
        let via_range: Vec<u64> = t.range(start..end).map(|(k, _)| k).collect();
        prop_assert_eq!(via_cursor, via_range);
    }
}

//! Concurrency stress tests for `quit-concurrent`: mixed reader/writer
//! loads, fast-path contention, and final-state verification against a
//! single-threaded reference.

use quick_insertion_tree::bods::BodsSpec;
use quick_insertion_tree::quit_concurrent::{ConcConfig, ConcurrentTree};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One base seed for the whole stress run, printed so any failure is
/// reproducible: rerun with `QUIT_STRESS_SEED=<seed>`. When the variable is
/// unset, the seed varies per run (wall-clock derived) so repeated CI runs
/// explore different streams and interleavings.
fn base_seed() -> u64 {
    let seed = std::env::var("QUIT_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED)
        });
    eprintln!("concurrent_stress base seed: {seed} (rerun with QUIT_STRESS_SEED={seed})");
    seed
}

/// Derives an independent per-thread seed from the base (SplitMix64 mix).
fn thread_seed(base: u64, thread: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(thread.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn heavy_mixed_load_ends_consistent() {
    let stress_seed = base_seed();
    let tree: Arc<ConcurrentTree<u64, u64>> = Arc::new(ConcurrentTree::new(ConcConfig::small(16)));
    let writers = 6;
    let per = 5_000u64;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..writers {
        let tree = tree.clone();
        handles.push(std::thread::spawn(move || {
            // Each writer ingests a near-sorted stream over its own range.
            let keys = BodsSpec::new(per as usize, 0.05, 1.0)
                .with_seed(thread_seed(stress_seed, w))
                .generate();
            let base = w * 10_000_000;
            for k in keys {
                tree.insert(base + k, w);
            }
        }));
    }
    let mut readers = Vec::new();
    for _ in 0..3 {
        let tree = tree.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut observed_max = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let r: Vec<(u64, u64)> = tree.range(..).collect();
                // Snapshot must always be sorted even mid-ingest.
                assert!(r.windows(2).all(|a| a[0].0 <= a[1].0), "unsorted scan");
                assert!(r.len() >= observed_max, "scan shrank");
                observed_max = r.len();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    assert_eq!(tree.len(), (writers * per) as usize);
    let all = tree.collect_all();
    assert_eq!(all.len(), tree.len());
    // Every writer's keys are present exactly once.
    let uniq: BTreeSet<u64> = all.iter().map(|e| e.0).collect();
    assert_eq!(uniq.len(), all.len(), "no duplicates were inserted");
    for w in 0..writers {
        let base = w * 10_000_000;
        let count = all.iter().filter(|e| e.0 / 10_000_000 == w).count();
        assert_eq!(count, per as usize, "writer {w} keys");
        assert!(tree.contains_key(base)); // key 0 of each writer's stream
    }
}

#[test]
fn contended_tail_inserts_keep_every_entry() {
    // All threads append to the same hot tail — the worst case §5.3 calls
    // out. Correctness must hold even when the fast path constantly
    // collides.
    let tree: Arc<ConcurrentTree<u64, u64>> = Arc::new(ConcurrentTree::new(ConcConfig::small(8)));
    let threads = 8u64;
    let per = 4_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = tree.clone();
            s.spawn(move || {
                for i in 0..per {
                    // Interleaved, globally near-sorted keys.
                    tree.insert(i * threads + t, t);
                }
            });
        }
    });
    assert_eq!(tree.len(), (threads * per) as usize);
    let all = tree.collect_all();
    assert!(all.windows(2).all(|a| a[0].0 <= a[1].0));
    assert_eq!(all.len(), (threads * per) as usize);
    // Every key in 0..threads*per is present exactly once.
    for (i, (k, _)) in all.iter().enumerate() {
        assert_eq!(*k, i as u64, "dense key space must be complete");
    }
}

#[test]
fn classic_and_quit_modes_agree_under_concurrency() {
    let stress_seed = base_seed();
    let keys = BodsSpec::new(30_000, 0.25, 1.0)
        .with_seed(thread_seed(stress_seed, 0))
        .generate();
    let results: Vec<Vec<(u64, u64)>> = [true, false]
        .into_iter()
        .map(|pole| {
            let tree: Arc<ConcurrentTree<u64, u64>> =
                Arc::new(ConcurrentTree::new(ConcConfig::small(32).with_pole(pole)));
            std::thread::scope(|s| {
                for t in 0..4 {
                    let tree = tree.clone();
                    let mine: Vec<u64> = keys.iter().skip(t).step_by(4).copied().collect();
                    s.spawn(move || {
                        for k in mine {
                            tree.insert(k, k * 2);
                        }
                    });
                }
            });
            tree.collect_all()
        })
        .collect();
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0].len(), keys.len());
}

/// SplitMix64 stepper for in-thread op streams (same constants as
/// [`thread_seed`], but advancing a mutable state).
fn splitmix_step(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn read_heavy_90_10_profile_is_exact() {
    // Fig-13-style read-mostly profile: 4 threads, 90% point lookups /
    // 10% inserts, partitioned key space so every observable is exact
    // even under full concurrency — final length, per-key presence, the
    // lookup counter, and the OLC restart-accounting invariant.
    let stress_seed = base_seed();
    let threads = 4u64;
    let per = 8_000u64; // ops per thread; per/10 of them insert
    for olc in [true, false] {
        let config = ConcConfig::small(16).with_olc(olc);
        let budget = u64::from(config.olc_max_restarts);
        let tree: Arc<ConcurrentTree<u64, u64>> = Arc::new(ConcurrentTree::new(config));
        std::thread::scope(|s| {
            for t in 0..threads {
                let tree = tree.clone();
                s.spawn(move || {
                    let mut st = thread_seed(stress_seed, t);
                    let mut inserted = 0u64;
                    for i in 0..per {
                        if i % 10 == 0 {
                            let k = inserted * threads + t;
                            tree.insert(k, k ^ t);
                            inserted += 1;
                        } else {
                            // Our partition is sequential to us: a key we
                            // inserted must be visible with its exact
                            // value, the next (unwritten) key must not.
                            let j = splitmix_step(&mut st) % (inserted + 1);
                            if j < inserted {
                                let k = j * threads + t;
                                assert_eq!(tree.get(k), Some(k ^ t), "lost key {k}");
                            } else {
                                let k = inserted * threads + t;
                                assert_eq!(tree.get(k), None, "phantom key {k}");
                            }
                        }
                    }
                });
            }
        });

        // Counters are sampled before any further reads touch them.
        let stats = tree.stats();
        let lookups = stats.lookups.get();
        let restarts = stats.olc_restarts.get();
        let fallbacks = stats.olc_fallbacks.get();
        assert_eq!(
            lookups,
            threads * (per - per / 10),
            "every get bumps lookups exactly once (olc={olc})"
        );
        if olc {
            // Each budget exhaustion records exactly budget+1 restarts
            // before the single fallback; successful retries only add.
            assert!(
                restarts >= fallbacks * (budget + 1),
                "restart accounting violated: {restarts} restarts, {fallbacks} fallbacks"
            );
        } else {
            assert_eq!(restarts, 0, "pessimistic mode must never restart");
            assert_eq!(fallbacks, 0, "pessimistic mode must never fall back");
        }

        assert_eq!(tree.len(), (threads * (per / 10)) as usize);
        let all = tree.collect_all();
        assert_eq!(all.len(), tree.len(), "scan and len agree");
        let uniq: BTreeSet<u64> = all.iter().map(|e| e.0).collect();
        assert_eq!(uniq.len(), all.len(), "no duplicate keys");
        for t in 0..threads {
            for j in 0..per / 10 {
                let k = j * threads + t;
                assert!(tree.contains_key(k), "key {k} lost after join");
            }
        }
        assert!(tree.check_consistency().is_ok());
    }
}

#[test]
fn point_reads_never_miss_committed_keys() {
    let tree: Arc<ConcurrentTree<u64, u64>> =
        Arc::new(ConcurrentTree::new(ConcConfig::paper_default()));
    for k in 0..5_000u64 {
        tree.insert(k * 2, k);
    }
    std::thread::scope(|s| {
        // A writer extends the key space while readers hammer the stable
        // prefix.
        let t = tree.clone();
        s.spawn(move || {
            for k in 5_000..20_000u64 {
                t.insert(k * 2, k);
            }
        });
        for _ in 0..4 {
            let t = tree.clone();
            s.spawn(move || {
                for _ in 0..20 {
                    for k in (0..5_000u64).step_by(37) {
                        assert_eq!(t.get(k * 2), Some(k));
                        assert_eq!(t.get(k * 2 + 1), None);
                    }
                }
            });
        }
    });
    assert_eq!(tree.len(), 20_000);
}

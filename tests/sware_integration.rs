//! End-to-end SWARE tests spanning `sware`, `bods`, and `quit-core`:
//! correctness through flush cycles, interleaved reads and deletes, and the
//! behavioural trade-offs the paper attributes to the design.

use quick_insertion_tree::bods::BodsSpec;
use quick_insertion_tree::sware::{SaBpTree, SwareConfig};

#[test]
fn interleaved_reads_during_ingest() {
    let keys = BodsSpec::new(20_000, 0.05, 1.0).generate();
    let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::small(256, 16));
    for (i, &k) in keys.iter().enumerate() {
        sa.insert(k, i as u64);
        if i % 100 == 99 {
            // Read a key from long ago (tree) and one just written (buffer).
            assert!(sa.get(keys[i / 2]).is_some(), "old key at step {i}");
            assert!(sa.get(k).is_some(), "fresh key at step {i}");
        }
    }
    sa.tree().check_invariants().unwrap();
}

#[test]
fn deletes_interleaved_with_flushes() {
    use std::collections::BTreeSet;
    let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::small(64, 8));
    let mut live: BTreeSet<u64> = BTreeSet::new();
    for k in 0..2000u64 {
        sa.insert(k, k);
        live.insert(k);
        // Delete some keys while fresh (buffered) and some long after
        // (likely flushed to the tree).
        for target in [k, k.saturating_sub(100)] {
            let should = (target % 7 == 6 || target % 11 == 10) && live.contains(&target);
            if should {
                assert_eq!(
                    sa.delete(target),
                    Some(target),
                    "delete {target} at step {k}"
                );
                live.remove(&target);
            }
        }
    }
    sa.flush_all();
    sa.tree().check_invariants().unwrap();
    for k in 0..2000u64 {
        assert_eq!(sa.get(k).is_some(), live.contains(&k), "key {k}");
    }
    assert_eq!(sa.len(), live.len());
}

#[test]
fn flush_all_leaves_empty_buffer() {
    let keys = BodsSpec::new(5_000, 0.10, 1.0).generate();
    let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::small(512, 16));
    for &k in &keys {
        sa.insert(k, k);
    }
    assert!(sa.buffered_len() > 0);
    sa.flush_all();
    assert_eq!(sa.buffered_len(), 0);
    assert_eq!(sa.tree().len(), 5_000);
    sa.tree().check_invariants().unwrap();
}

#[test]
fn sortedness_improves_bulk_load_ratio() {
    // The more sorted the stream, the larger the bulk-loaded share — the
    // mechanism behind SWARE's Fig 14a advantage over a plain B+-tree.
    let mut ratios = Vec::new();
    for k in [0.0, 0.10, 1.0] {
        let keys = BodsSpec::new(20_000, k, 1.0).generate();
        let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::small(512, 16));
        for &key in &keys {
            sa.insert(key, key);
        }
        sa.flush_all();
        let s = sa.stats();
        ratios.push(s.bulk_loaded as f64 / (s.bulk_loaded + s.flush_top_inserts) as f64);
    }
    assert!(ratios[0] > 0.99, "sorted: {ratios:?}");
    assert!(
        ratios[0] >= ratios[1] && ratios[1] > ratios[2],
        "{ratios:?}"
    );
}

#[test]
fn buffer_cracking_pays_off_across_queries() {
    let keys = BodsSpec::new(4_000, 0.50, 1.0).generate();
    let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::small(4096, 64));
    for &k in &keys {
        sa.insert(k, k);
    }
    // Everything is still buffered (capacity 4096 >= 4000).
    assert_eq!(sa.buffered_len(), 4_000);
    for k in (0..4000u64).step_by(13) {
        assert_eq!(sa.get(k), Some(k));
    }
    let cracked_after_first_pass = sa.buffer_stats().pages_cracked;
    for k in (0..4000u64).step_by(17) {
        assert_eq!(sa.get(k), Some(k));
    }
    assert_eq!(
        sa.buffer_stats().pages_cracked,
        cracked_after_first_pass,
        "second pass must reuse cracked pages"
    );
}

#[test]
fn duplicate_keys_survive_flush_cycles() {
    let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::small(64, 8));
    for rep in 0..50u64 {
        for k in 0..40u64 {
            sa.insert(k, rep);
        }
    }
    sa.flush_all();
    assert_eq!(sa.len(), 2000);
    let r = sa.range(10..11);
    assert_eq!(r.len(), 50, "all duplicates of key 10");
    sa.tree().check_invariants().unwrap();
}

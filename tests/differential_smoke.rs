//! Façade-level smoke test for the differential testkit: the oracle is
//! reachable through `quick_insertion_tree::quit_testkit` and replays a
//! small fixed-seed workload grid cleanly. The heavyweight soaks live in
//! `crates/testkit/tests/differential.rs`.
//!
//! (No `inject-split-bug` gate needed here: the root package never enables
//! that feature, so this test always runs against the clean tree.)

use quick_insertion_tree::quit_testkit::{replay, OpMix, OracleConfig, WorkloadSpec};

#[test]
fn oracle_replays_clean_through_the_facade() {
    for (seed, k) in [(1u64, 0.0), (2, 0.1), (3, 0.6)] {
        let ops = WorkloadSpec {
            ops: 600,
            k_fraction: k,
            l_fraction: 0.5,
            seed,
            mix: OpMix::mixed(),
            dup_fraction: 0.1,
        }
        .generate();
        replay(&ops, &OracleConfig::default()).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
}

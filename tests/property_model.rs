//! Property-based differential testing: every index variant against a
//! `BTreeMap<u64, Vec<u64>>` multiset model, over random operation
//! sequences with duplicate keys, deletes, and range scans. Structural
//! invariants are re-checked after every batch.
//!
//! Limitation: the vendored `proptest` stub does not persist failing cases
//! to a `.proptest-regressions` file (upstream does), so shrunk
//! counterexamples must be copied into a dedicated unit test by hand if
//! they are to be kept.

use proptest::prelude::*;
use quick_insertion_tree::quit_core::{TreeConfig, Variant};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
    Get(u64),
    Range(u64, u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0..key_space).prop_map(Op::Delete),
        1 => (0..key_space).prop_map(Op::Get),
        1 => (0..key_space, 0..64u64).prop_map(|(s, w)| Op::Range(s, s + w)),
    ]
}

/// A model that mirrors index semantics: a key maps to a multiset of
/// values; delete removes one instance.
#[derive(Default)]
struct Model {
    map: BTreeMap<u64, Vec<u64>>,
    len: usize,
}

impl Model {
    fn insert(&mut self, k: u64, v: u64) {
        self.map.entry(k).or_default().push(v);
        self.len += 1;
    }
    fn delete(&mut self, k: u64) -> bool {
        if let Some(vs) = self.map.get_mut(&k) {
            vs.pop();
            if vs.is_empty() {
                self.map.remove(&k);
            }
            self.len -= 1;
            true
        } else {
            false
        }
    }
    fn contains(&self, k: u64) -> bool {
        self.map.contains_key(&k)
    }
    fn range_keys(&self, s: u64, e: u64) -> Vec<u64> {
        self.map
            .range(s..e)
            .flat_map(|(k, vs)| std::iter::repeat_n(*k, vs.len()))
            .collect()
    }
}

fn run_ops(variant: Variant, leaf_cap: usize, ops: &[Op]) {
    let mut tree = variant.build::<u64, u64>(TreeConfig::small(leaf_cap));
    let mut model = Model::default();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k, v) => {
                tree.insert(k, v);
                model.insert(k, v);
            }
            Op::Delete(k) => {
                let t = tree.delete(k).is_some();
                let m = model.delete(k);
                assert_eq!(t, m, "op {i}: delete({k}) mismatch ({variant:?})");
            }
            Op::Get(k) => {
                assert_eq!(
                    tree.contains_key(k),
                    model.contains(k),
                    "op {i}: get({k}) mismatch ({variant:?})"
                );
            }
            Op::Range(s, e) => {
                let got: Vec<u64> = tree.range(s..e).map(|(k, _)| k).collect();
                let want = model.range_keys(s, e);
                assert_eq!(got, want, "op {i}: range({s},{e}) mismatch ({variant:?})");
            }
        }
        if i % 64 == 0 {
            tree.check_invariants()
                .unwrap_or_else(|e| panic!("op {i} ({variant:?}): {e}"));
        }
    }
    assert_eq!(tree.len(), model.len, "final length ({variant:?})");
    tree.check_invariants().unwrap();
    // Full-content comparison at the end.
    let all: Vec<u64> = tree.iter().map(|(k, _)| k).collect();
    let expect: Vec<u64> = model.range_keys(0, u64::MAX);
    assert_eq!(all, expect, "final contents ({variant:?})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn classic_matches_model(ops in prop::collection::vec(op_strategy(256), 1..600)) {
        run_ops(Variant::Classic, 6, &ops);
    }

    #[test]
    fn quit_matches_model(ops in prop::collection::vec(op_strategy(256), 1..600)) {
        run_ops(Variant::Quit, 6, &ops);
    }

    #[test]
    fn pole_only_matches_model(ops in prop::collection::vec(op_strategy(256), 1..600)) {
        run_ops(Variant::PoleOnly, 6, &ops);
    }

    #[test]
    fn lil_matches_model(ops in prop::collection::vec(op_strategy(256), 1..600)) {
        run_ops(Variant::Lil, 6, &ops);
    }

    #[test]
    fn tail_matches_model(ops in prop::collection::vec(op_strategy(256), 1..600)) {
        run_ops(Variant::Tail, 6, &ops);
    }

    #[test]
    fn quit_matches_model_with_bigger_leaves(
        ops in prop::collection::vec(op_strategy(64), 1..400),
        cap in 4usize..40,
    ) {
        run_ops(Variant::Quit, cap, &ops);
    }

    /// Lazy `range` agrees with the `BTreeMap` model for every one of the
    /// six `(start, end)` bound shapes, across all variants.
    #[test]
    fn range_bounds_match_model(
        keys in prop::collection::vec(0..512u64, 1..400),
        s in 0..512u64,
        w in 0..96u64,
    ) {
        use std::ops::Bound;
        let e = s.saturating_add(w);
        for variant in [Variant::Classic, Variant::Quit, Variant::Tail] {
            let mut tree = variant.build::<u64, u64>(TreeConfig::small(6));
            let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            for (i, &k) in keys.iter().enumerate() {
                tree.insert(k, i as u64);
                model.entry(k).or_default().push(i as u64);
            }
            let shapes: [(Bound<u64>, Bound<u64>); 6] = [
                (Bound::Included(s), Bound::Included(e)),
                (Bound::Included(s), Bound::Excluded(e)),
                (Bound::Included(s), Bound::Unbounded),
                (Bound::Excluded(s), Bound::Excluded(e)),
                (Bound::Excluded(s), Bound::Unbounded),
                (Bound::Unbounded, Bound::Excluded(e)),
            ];
            for bounds in shapes {
                let got: Vec<u64> = tree.range(bounds).map(|(k, _)| k).collect();
                let want: Vec<u64> = model
                    .range(bounds)
                    .flat_map(|(k, vs)| std::iter::repeat_n(*k, vs.len()))
                    .collect();
                prop_assert_eq!(got, want, "bounds {:?} ({:?})", bounds, variant);
            }
        }
    }

    /// `insert_batch` produces the same final contents as a per-key insert
    /// loop, and never takes the fast path less often, for any K%-sorted
    /// stream (Sec. 5's BoDS disorder knob).
    #[test]
    fn insert_batch_matches_per_key(
        k_milli in 0usize..500,
        n in 100usize..1500,
        seed in any::<u64>(),
    ) {
        let keys = quick_insertion_tree::bods::BodsSpec::new(n, k_milli as f64 / 1000.0, 1.0)
            .with_seed(seed)
            .generate();
        let entries: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();

        let mut loop_tree = Variant::Quit.build::<u64, u64>(TreeConfig::small(8));
        for &(k, v) in &entries {
            loop_tree.insert(k, v);
        }
        let mut batch_tree = Variant::Quit.build::<u64, u64>(TreeConfig::small(8));
        batch_tree.insert_batch(&entries);

        prop_assert_eq!(batch_tree.len(), loop_tree.len());
        let a: Vec<(u64, u64)> = batch_tree.iter().map(|(k, v)| (k, *v)).collect();
        let b: Vec<(u64, u64)> = loop_tree.iter().map(|(k, v)| (k, *v)).collect();
        prop_assert_eq!(a, b, "batched vs per-key contents diverge");
        batch_tree.check_invariants().unwrap();
        prop_assert!(
            batch_tree.stats().snapshot().fast_inserts
                >= loop_tree.stats().snapshot().fast_inserts,
            "batching must not reduce fast-path usage"
        );
    }

    /// Sorted-ish streams with injected disorder, ingested then drained.
    #[test]
    fn quit_survives_ingest_then_drain(
        k_milli in 0usize..500,
        n in 200usize..1200,
        seed in any::<u64>(),
    ) {
        let keys = quick_insertion_tree::bods::BodsSpec::new(n, k_milli as f64 / 1000.0, 1.0)
            .with_seed(seed)
            .generate();
        let mut tree = Variant::Quit.build::<u64, u64>(TreeConfig::small(8));
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i as u64);
        }
        tree.check_invariants().unwrap();
        for &k in &keys {
            prop_assert!(tree.delete(k).is_some());
        }
        prop_assert!(tree.is_empty());
        tree.check_invariants().unwrap();
    }
}

//! Cross-crate observability tests: counter exactness under concurrent
//! writers, histogram coverage, window semantics, and a `to_json()`
//! round-trip checked with a minimal hand-rolled extractor (the workspace
//! vendors no JSON parser, so the exporter is validated the same way it is
//! written — by hand).

use quick_insertion_tree::quit_concurrent::{ConcConfig, ConcurrentTree};
use quick_insertion_tree::quit_core::{MetricsLevel, SortedIndex, TreeConfig, Variant};
use std::sync::Arc;

/// Extracts the integer value following `"key":` in a flat JSON document.
/// Good enough for the exporter's output, where every counter appears
/// exactly once at some nesting depth.
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let digits: String = doc[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[test]
fn concurrent_counters_are_exact_under_stress() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 5_000;
    let tree: Arc<ConcurrentTree<u64, u64>> = Arc::new(ConcurrentTree::new(
        ConcConfig::paper_default().with_metrics_level(MetricsLevel::Histograms),
    ));
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let tree = tree.clone();
            s.spawn(move || {
                // Interleaved ascending runs: every thread fights for the
                // same poℓe leaf, exercising both insert outcomes.
                for i in 0..PER_THREAD {
                    tree.insert(i * THREADS as u64 + t, i);
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    let m = tree.metrics();
    assert_eq!(
        m.fast_inserts + m.top_inserts,
        total,
        "counters must be exact, not sampled, under concurrent writers"
    );
    assert_eq!(
        m.insert_latency.count(),
        total,
        "one latency sample per insert"
    );
    assert!(m.insert_latency.p50_ns() <= m.insert_latency.p99_ns());
    assert!(m.insert_latency.p99_ns() <= m.insert_latency.p999_ns());
    assert_eq!(ConcurrentTree::len(&tree), total as usize);
    let rate = m.recent_fastpath_rate();
    assert!(
        (0.0..=1.0).contains(&rate),
        "window rate {rate} out of range"
    );
}

#[test]
fn every_family_reports_the_same_counter_groups() {
    let keys: Vec<u64> = (0..20_000).collect();
    let mut core = Variant::Quit
        .build::<u64, u64>(TreeConfig::small(64).with_metrics_level(MetricsLevel::Histograms));
    let conc: ConcurrentTree<u64, u64> = ConcurrentTree::new(
        ConcConfig::paper_default().with_metrics_level(MetricsLevel::Histograms),
    );
    let mut sa = quick_insertion_tree::sware::SaBpTree::new(
        quick_insertion_tree::sware::SwareConfig::small(256, 64),
    );
    for &k in &keys {
        SortedIndex::insert(&mut core, k, k);
        conc.insert(k, k);
        SortedIndex::insert(&mut sa, k, k);
    }
    // SWARE counts entries as they flush out of the sortedness-aware
    // buffer, so drain it before comparing totals.
    sa.flush_all();
    for (name, m) in [
        ("core", SortedIndex::metrics(&core)),
        ("concurrent", SortedIndex::metrics(&conc)),
        ("sware", SortedIndex::metrics(&sa)),
    ] {
        // Identical counter families through one trait surface: a sorted
        // stream must be served mostly by each family's fast/bulk path.
        assert_eq!(m.total_inserts(), keys.len() as u64, "{name}");
        assert!(m.fast_insert_fraction() > 0.9, "{name}");
        let json = m.to_json();
        assert_eq!(
            json_u64(&json, "fast_inserts"),
            Some(m.fast_inserts),
            "{name}"
        );
    }
}

#[test]
fn json_round_trips_through_hand_parser() {
    let mut tree = Variant::Quit
        .build::<u64, u64>(TreeConfig::small(64).with_metrics_level(MetricsLevel::Histograms));
    for k in 0..10_000u64 {
        tree.insert(k, k);
    }
    for k in (0..10_000u64).step_by(7) {
        tree.get(k);
    }
    let _ = tree.range(100..500).count();
    let m = tree.metrics();
    let json = m.to_json();
    for (key, want) in [
        ("fast_inserts", m.fast_inserts),
        ("top_inserts", m.top_inserts),
        ("leaf_splits", m.leaf_splits),
        ("lookups", m.lookups),
        ("range_scans", m.range_scans),
        ("deletes", m.deletes),
    ] {
        assert_eq!(json_u64(&json, key), Some(want), "field {key}");
    }
    assert_eq!(
        json_u64(&json, "count"),
        Some(m.insert_latency.count()),
        "insert histogram count is the first \"count\" in the document"
    );
    assert!(json.contains("\"p99_ns\":"));
    assert!(json.contains("\"fastpath_window\":"));
    // Balanced braces/brackets — cheap structural sanity on top of the
    // field-level checks.
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    assert_eq!(opens, closes);
}

#[test]
fn metrics_level_off_records_nothing_but_stays_correct() {
    let mut tree = Variant::Quit
        .build::<u64, u64>(TreeConfig::small(64).with_metrics_level(MetricsLevel::Off));
    for k in 0..5_000u64 {
        tree.insert(k, k);
    }
    let m = tree.metrics();
    // Counters still tick at Off (they are the paper's figures); only the
    // clock-reading histograms stay silent.
    assert_eq!(m.total_inserts(), 5_000);
    assert_eq!(m.insert_latency.count(), 0, "no clock reads at Off");
    assert_eq!(tree.len(), 5_000);
}

#[test]
fn reset_metrics_clears_counters_and_histograms() {
    let mut tree = Variant::Quit
        .build::<u64, u64>(TreeConfig::small(64).with_metrics_level(MetricsLevel::Histograms));
    for k in 0..2_000u64 {
        tree.insert(k, k);
    }
    assert!(SortedIndex::metrics(&tree).total_inserts() > 0);
    tree.reset_metrics();
    let m = SortedIndex::metrics(&tree);
    assert_eq!(m.total_inserts(), 0);
    assert_eq!(m.insert_latency.count(), 0);
    assert_eq!(m.window_len, 0);
    assert_eq!(tree.len(), 2_000, "reset touches metrics only, not data");
}

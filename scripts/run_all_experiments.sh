#!/usr/bin/env bash
# Regenerates every table and figure of the paper at harness scale.
# Results land in results/<target>.txt. Override sizes via N_MAIN etc.
set -u
cd "$(dirname "$0")/.."
RUN="cargo run --release -q -p quit-bench --bin"
run() { echo "=== $1 ($(date +%H:%M:%S)) ==="; }
run fig3;   $RUN fig3   -- --n "${N_FIG3:-2000000}"    > results/fig3.txt   2>&1
run fig5;   $RUN fig5   -- --n "${N_FIG5:-2000000}"    > results/fig5.txt   2>&1
run fig8;   $RUN fig8   -- --n "${N_MAIN:-2000000}"    > results/fig8.txt   2>&1
run fig9;   $RUN fig9   -- --n "${N_MAIN:-2000000}"    > results/fig9.txt   2>&1
run fig10;  $RUN fig10  -- --n "${N_MAIN:-2000000}"    > results/fig10.txt  2>&1
run fig11;  $RUN fig11  -- --n "${N_FIG11:-500000}"    > results/fig11.txt  2>&1
run fig12;  $RUN fig12  -- --n "${N_MAIN:-2000000}"    > results/fig12.txt  2>&1
run fig13;  $RUN fig13  -- --n "${N_FIG13:-500000}" --threads 8 > results/fig13.txt 2>&1
run fig14;  $RUN fig14  -- --n "${N_FIG14:-1000000}"   > results/fig14.txt  2>&1
run fig15;  $RUN fig15                                  > results/fig15.txt 2>&1
run fig1a;  $RUN fig1a  -- --n "${N_MAIN:-2000000}"    > results/fig1a.txt  2>&1
run table2; $RUN table2 -- --n "${N_MAIN:-2000000}"    > results/table2.txt 2>&1
run table3; $RUN table3 -- --n "${N_MAIN:-2000000}"    > results/table3.txt 2>&1
run sensitivity; $RUN sensitivity -- --n "${N_SENS:-500000}" > results/sensitivity.txt 2>&1
echo "=== done ($(date +%H:%M:%S)) ==="

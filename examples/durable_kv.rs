//! A durable key-value store in one file: open a write-ahead-logged QuIT
//! index, ingest a near-sorted stream, crash at the worst possible moment,
//! and recover — then checkpoint so the next recovery is a bulk load.
//!
//! ```sh
//! cargo run --release --example durable_kv
//! ```
//!
//! The crash here is simulated by `MemStorage`, whose model is exactly a
//! journaling filesystem's: an fsynced byte survives, anything later may
//! vanish. Swap in `FsStorage::open(path)` for a real on-disk store — the
//! rest of the code is identical.

use quick_insertion_tree::bods::BodsSpec;
use quick_insertion_tree::quit_core::{FastPathMode, SortedIndex, TreeConfig};
use quick_insertion_tree::quit_durability::{
    bptree_builder, DurabilityConfig, Durable, MemStorage, Storage,
};
use std::sync::Arc;

fn main() {
    let storage = Arc::new(MemStorage::new());
    let config = DurabilityConfig::group_commit();
    let build = || bptree_builder::<u64, u64>(FastPathMode::Pole, TreeConfig::paper_default());

    // Open: on an empty store this is a fresh index.
    let (mut kv, report) =
        Durable::open(storage.clone() as Arc<dyn Storage>, config, build()).unwrap();
    println!(
        "opened fresh store: {} entries recovered in {:?}",
        report.snapshot_entries + report.tail_records,
        report.elapsed
    );

    // Ingest a near-sorted event stream (3% disorder). Every insert is
    // WAL-framed and group-committed before it returns; the tree insert
    // itself still rides the poℓe fast path.
    let keys = BodsSpec::new(200_000, 0.03, 1.0).with_seed(7).generate();
    for (seq, &k) in keys.iter().enumerate() {
        kv.insert(k, seq as u64);
    }
    kv.delete(keys[0]);
    let live_len = kv.len();
    let m = SortedIndex::<u64, u64>::metrics(&kv);
    println!(
        "ingested {} events: {:.1}% fast-path, {} WAL appends, {} fsyncs",
        keys.len(),
        m.fast_insert_fraction() * 100.0,
        m.wal_appends,
        m.wal_fsyncs
    );

    // Crash. Only fsync-guaranteed bytes survive — the harshest cut the
    // storage contract allows. (With group commit every acked write is
    // covered; at `DurabilityLevel::Buffered` this would lose the
    // unsynced suffix, and recovery would land on an earlier consistent
    // prefix.)
    drop(kv);
    let after_crash = Arc::new(storage.crash_durable_only());

    // Recover: replay the WAL tail (batched through the sorted-run fast
    // path) and verify nothing acked was lost.
    let (mut kv, report) =
        Durable::open(after_crash.clone() as Arc<dyn Storage>, config, build()).unwrap();
    println!(
        "recovered {} records to LSN {} in {:?} (torn tail: {})",
        report.tail_records, report.recovered_lsn, report.elapsed, report.torn_tail
    );
    assert_eq!(kv.len(), live_len, "every acked write must survive");
    assert_eq!(kv.get(keys[0]), None, "the delete survived too");
    assert_eq!(kv.get(keys[1]), Some(1));

    // Checkpoint: write a sorted snapshot and rotate the WAL. Recovery
    // after this is an O(n) bulk load at the configured leaf fill plus a
    // tiny tail — not a full replay.
    kv.checkpoint::<u64, u64>().unwrap();
    for k in 1_000_000..1_000_100u64 {
        kv.insert(k, k);
    }
    drop(kv);
    let after_second_crash = Arc::new(after_crash.crash_durable_only());
    let (kv, report) =
        Durable::open(after_second_crash as Arc<dyn Storage>, config, build()).unwrap();
    println!(
        "post-checkpoint recovery: {} snapshot entries + {} tail records in {:?}",
        report.snapshot_entries, report.tail_records, report.elapsed
    );
    assert_eq!(kv.len(), live_len + 100);
    println!("durable_kv: all checks passed");
}

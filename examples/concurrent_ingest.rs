//! Multi-threaded ingestion (paper §4.5 / Fig 13): several producer threads
//! feed one concurrent QuIT; the poℓe fast path keeps the critical section
//! to a single leaf lock, so near-sorted streams scale better than the
//! crabbing B+-tree.
//!
//! ```sh
//! cargo run --release --example concurrent_ingest
//! ```

use quick_insertion_tree::bods::BodsSpec;
use quick_insertion_tree::quit_concurrent::{ConcConfig, ConcurrentTree};
use std::sync::Arc;
use std::time::Instant;

fn ingest(
    keys: &[u64],
    threads: usize,
    config: ConcConfig,
) -> (f64, Arc<ConcurrentTree<u64, u64>>) {
    let tree: Arc<ConcurrentTree<u64, u64>> = Arc::new(ConcurrentTree::new(config));
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = tree.clone();
            let mine: Vec<u64> = keys.iter().skip(t).step_by(threads).copied().collect();
            s.spawn(move || {
                for k in mine {
                    tree.insert(k, k);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (keys.len() as f64 / secs, tree)
}

fn main() {
    let n = 1_000_000;
    let keys = BodsSpec::new(n, 0.05, 1.0).generate(); // near-sorted feed
    println!("ingesting {n} near-sorted keys (K=5%)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>8}",
        "threads", "QuIT op/s", "B+-tree op/s", "ratio"
    );
    for threads in [1, 2, 4, 8] {
        let (quit_tput, quit_tree) = ingest(&keys, threads, ConcConfig::paper_default());
        let (classic_tput, _) =
            ingest(&keys, threads, ConcConfig::paper_default().with_pole(false));
        println!(
            "{threads:>8} {:>13.2}M {:>13.2}M {:>7.2}x",
            quit_tput / 1e6,
            classic_tput / 1e6,
            quit_tput / classic_tput
        );
        if threads == 8 {
            let m = quit_tree.metrics();
            println!(
                "\nat 8 threads QuIT served {:.1}% of inserts through the single-leaf fast path",
                100.0 * m.fast_insert_fraction()
            );
            println!(
                "fast-path rate over the last {} inserts: {:.1}%",
                m.window_len,
                100.0 * m.recent_fastpath_rate()
            );
            // Readers run concurrently with no coordination beyond the
            // shared locks.
            let sample = quit_tree.range(1000..1100).count();
            println!("range [1000, 1100) sees {sample} entries");
        }
    }
}

//! Snapshot persistence and cursor navigation: save an index, restore it
//! with packed leaves, and serve paginated scans — the integration surface
//! a storage engine builds on.
//!
//! ```sh
//! cargo run --release --example persistence_and_cursors
//! ```

use quick_insertion_tree::bods::BodsSpec;
use quick_insertion_tree::quit_core::BpTree;

fn main() {
    // Ingest a near-sorted event stream.
    let keys = BodsSpec::new(300_000, 0.03, 1.0).with_seed(11).generate();
    let mut live: BpTree<u64, u64> = BpTree::quit();
    for (seq, &k) in keys.iter().enumerate() {
        live.insert(k, seq as u64);
    }
    let occ_live = live.memory_report().avg_leaf_occupancy;
    println!(
        "live index: {} entries, {:.0}% leaf occupancy, {:.1}% fast-path",
        live.len(),
        occ_live * 100.0,
        live.stats().fast_insert_fraction() * 100.0
    );

    // Checkpoint: capture the logical state. (With `--features serde` on
    // quit-core, TreeSnapshot serializes with any serde format.)
    let snapshot = live.to_snapshot();
    println!("snapshot captured: {} entries", snapshot.len());

    // Restore with 10% headroom per leaf so post-restore inserts don't
    // immediately cascade splits (the §5.2.1 tuning note, applied offline).
    let mut restored = snapshot.restore_with_fill(0.9);
    println!(
        "restored index: {:.0}% leaf occupancy, {} nodes (live had {})",
        restored.memory_report().avg_leaf_occupancy * 100.0,
        restored.node_count(),
        live.node_count()
    );
    restored
        .check_invariants()
        .expect("restored index is sound");

    // Cursor pagination: serve the scan in pages of 50, resuming from the
    // last key seen — the classic "seek + limit" executor pattern.
    let mut after = 120_000u64;
    for page_no in 0..3 {
        let mut cursor = restored.cursor_at(after + 1);
        let page: Vec<u64> = std::iter::from_fn(|| cursor.next().map(|e| e.0))
            .take(50)
            .collect();
        println!(
            "page {page_no}: {} keys, {:?} ..= {:?}",
            page.len(),
            page.first(),
            page.last()
        );
        match page.last() {
            Some(&last) => after = last,
            None => break,
        }
    }

    // Reverse scan: the 5 largest keys under a bound.
    let mut cursor = restored.cursor_at(200_000);
    let mut newest: Vec<u64> = Vec::new();
    cursor.prev(); // step off the bound itself
    while newest.len() < 5 {
        match cursor.prev() {
            Some((k, _)) => newest.push(k),
            None => break,
        }
    }
    println!("5 largest keys below 200000: {newest:?}");

    // The restored index ingests new data through the fast path at once.
    restored.stats().reset();
    for k in 300_000..310_000u64 {
        restored.insert(k, k);
    }
    println!(
        "post-restore ingest: {:.1}% fast-path",
        restored.stats().fast_insert_fraction() * 100.0
    );
}

//! Serve a sharded QuIT key-value store over TCP.
//!
//! ```sh
//! cargo run --release --example quit_server -- 127.0.0.1:7878 --shards 4 --dir /tmp/quit-data
//! ```
//!
//! Omit `--dir` for an in-memory store (nothing survives the process).
//! Each shard owns a `Durable<ConcurrentTree>` with its own WAL directory
//! (`shard-0000/`, `shard-0001/`, …) and a dedicated worker thread;
//! clients' pipelined inserts are coalesced per shard into sorted runs so
//! near-sorted streams ride the fast path end to end. Every acked write
//! is group-committed before its reply, so killing the process (ctrl-c)
//! loses nothing that was acknowledged.
//!
//! Pair with the `quit_client` example for a command-line client.

use quick_insertion_tree::quit_service::{Server, ServiceConfig};

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut dir: Option<String> = None;
    let mut shards = 4usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = Some(args.next().expect("--dir needs a path")),
            "--shards" => {
                shards = args
                    .next()
                    .expect("--shards needs a count")
                    .parse()
                    .expect("--shards must be a number")
            }
            "--help" | "-h" => {
                eprintln!("usage: quit_server [ADDR] [--shards N] [--dir PATH]");
                return;
            }
            other if !other.starts_with("--") => addr = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }

    let config = ServiceConfig::paper_default().with_shards(shards);
    let (server, reports) = match &dir {
        Some(dir) => Server::start_dir(dir, config, &addr),
        None => Server::start_in_memory(config, &addr),
    }
    .unwrap_or_else(|e| panic!("failed to start on {addr}: {e}"));

    for (i, r) in reports.iter().enumerate() {
        if r.recovered_lsn > 0 {
            println!(
                "shard {i}: recovered {} snapshot entries + {} tail records (LSN {}) in {:?}",
                r.snapshot_entries, r.tail_records, r.recovered_lsn, r.elapsed
            );
        }
    }
    println!(
        "quit_server: {} shards ({}) listening on {}",
        shards,
        if dir.is_some() {
            "durable"
        } else {
            "in-memory"
        },
        server.local_addr()
    );

    // Serve until killed. Acked writes are already fsync-durable, so an
    // abrupt exit is safe; the next start on the same --dir recovers.
    loop {
        std::thread::park();
    }
}

//! Quickstart: build a Quick Insertion Tree, feed it a near-sorted stream,
//! and watch the fast path do the work.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use quick_insertion_tree::quit_core::{BpTree, TreeConfig, Variant};

fn main() {
    // A QuIT with the paper's default geometry: 4 KB pages, 510-entry
    // leaves, IKR scale 1.5, reset threshold ⌊√510⌋ = 22.
    let mut index: BpTree<u64, String> = BpTree::quit();

    // Simulate a nearly sorted feed: mostly ascending event ids with the
    // occasional late arrival.
    let mut stream: Vec<u64> = (0..200_000).collect();
    for i in (1000..200_000).step_by(5000) {
        stream.swap(i, i - 900); // ~0.8% of entries out of order
    }
    for &id in &stream {
        index.insert(id, format!("event-{id}"));
    }

    // Point and range lookups are plain B+-tree reads — no read penalty.
    assert_eq!(index.get(42), Some(&"event-42".to_string()));
    let window = index.range(10_000..10_010).count();
    println!("range [10000, 10010): {window} entries");

    // The whole point: almost everything skipped the root-to-leaf walk.
    let stats = index.stats();
    println!(
        "inserted {} entries: {:.1}% fast-path, {} top-inserts, {} resets",
        index.len(),
        stats.fast_insert_fraction() * 100.0,
        stats.top_inserts.get(),
        stats.fp_resets.get(),
    );

    // And the variable split packed leaves tight.
    let mem = index.memory_report();
    println!(
        "leaves: {} at {:.0}% average occupancy ({} KiB paged)",
        mem.leaf_nodes,
        mem.avg_leaf_occupancy * 100.0,
        mem.paged_bytes / 1024
    );

    // Compare against a classical B+-tree on the same stream.
    let mut classic = Variant::Classic.build::<u64, u64>(TreeConfig::paper_default());
    for &id in &stream {
        classic.insert(id, id);
    }
    let cmem = classic.memory_report();
    println!(
        "classical B+-tree needs {} leaves at {:.0}% occupancy — {:.2}x the memory",
        cmem.leaf_nodes,
        cmem.avg_leaf_occupancy * 100.0,
        cmem.paged_bytes as f64 / mem.paged_bytes as f64
    );
}

//! Time-series ingestion with bounded arrival skew — the streaming scenario
//! of the paper's §6: events are timestamped at the source but arrive
//! slightly out of order through the network, i.e. a K–L-sorted stream with
//! small L. QuIT absorbs the skew without SWARE-style buffering, then
//! windowed scans and retention deletes run against the same index.
//!
//! ```sh
//! cargo run --release --example timeseries_ingest
//! ```

use quick_insertion_tree::bods::{measure, BodsSpec};
use quick_insertion_tree::quit_core::BpTree;

fn main() {
    // 500k events; 4% arrive out of order, displaced by at most 0.1% of the
    // stream (network jitter, not wholesale reordering).
    let timestamps = BodsSpec::new(500_000, 0.04, 0.001).with_seed(7).generate();
    let realized = measure(&timestamps);
    println!(
        "arrival skew: K={:.1}% of events out of order, max displacement {} slots",
        realized.k_fraction * 100.0,
        realized.l
    );

    let mut index: BpTree<u64, u64> = BpTree::quit();
    for (seq, &ts) in timestamps.iter().enumerate() {
        index.insert(ts, seq as u64);
    }
    let stats = index.stats();
    println!(
        "ingested {} events: {:.1}% fast-path ({} top-inserts)",
        index.len(),
        stats.fast_insert_fraction() * 100.0,
        stats.top_inserts.get()
    );

    // Windowed aggregation: count events per 50k-tick window.
    println!("\nevents per window:");
    for w in 0..10 {
        let (lo, hi) = (w * 50_000, (w + 1) * 50_000);
        let count = index.range_count(lo..hi);
        println!("  [{lo:>7}, {hi:>7}): {count}");
    }

    // Retention: drop everything older than tick 100k, then keep ingesting.
    let expired: Vec<(u64, u64)> = index.range(0..100_000).map(|(k, v)| (k, *v)).collect();
    for (ts, _) in &expired {
        index.delete(*ts);
    }
    println!("\nexpired {} events below tick 100000", expired.len());
    index
        .check_invariants()
        .expect("index remains structurally sound after retention");

    // New events continue to ride the fast path after heavy deletion.
    let before = index.stats().fast_inserts.get();
    for ts in 500_000..520_000u64 {
        index.insert(ts, ts);
    }
    let after = index.stats().fast_inserts.get();
    println!(
        "post-retention ingest: {}/{} new events took the fast path",
        after - before,
        20_000
    );
}

//! Index an intraday stock-price stream (the paper's Fig 15 scenario):
//! closing prices trend upward — implicit near-sortedness that QuIT turns
//! into fast-path inserts — then answer price-band queries.
//!
//! ```sh
//! cargo run --release --example stock_ticker
//! ```

use quick_insertion_tree::bods::{adjacent_inversion_fraction, StockSpec};
use quick_insertion_tree::quit_core::{BpTree, TreeConfig, Variant};
use std::time::Instant;

fn main() {
    // Synthetic NIFTY-like series: one-minute bars, upward drift,
    // volatility clustering. Keys are price ticks (price × 100).
    let ticks = StockSpec::nifty().scaled(300_000).generate_ticks();
    println!(
        "stream: {} bars, first {} last {}, {:.1}% adjacent inversions",
        ticks.len(),
        ticks[0],
        ticks[ticks.len() - 1],
        adjacent_inversion_fraction(&ticks) * 100.0
    );

    // Index price -> bar number, so "when did we trade in this band?"
    // becomes a range scan.
    let mut by_price: BpTree<u64, u32> = BpTree::quit();
    let start = Instant::now();
    for (bar, &price) in ticks.iter().enumerate() {
        by_price.insert(price, bar as u32);
    }
    let quit_time = start.elapsed();
    println!(
        "QuIT ingest: {:.0?} ({:.1}% fast-path)",
        quit_time,
        by_price.stats().fast_insert_fraction() * 100.0
    );

    let mut classic: BpTree<u64, u32> = Variant::Classic.build(TreeConfig::paper_default());
    let start = Instant::now();
    for (bar, &price) in ticks.iter().enumerate() {
        classic.insert(price, bar as u32);
    }
    let classic_time = start.elapsed();
    println!(
        "B+-tree ingest: {:.0?} — QuIT speedup {:.2}x",
        classic_time,
        classic_time.as_secs_f64() / quit_time.as_secs_f64()
    );

    // Price-band query: all bars where the instrument traded in
    // [p25, p75) of its final price.
    let last = *ticks.last().expect("non-empty");
    let (lo, hi) = (last / 4, last * 3 / 4);
    let band = by_price.range_with_stats(lo..hi);
    println!(
        "bars traded in [{:.2}, {:.2}): {} ({} leaf accesses)",
        lo as f64 / 100.0,
        hi as f64 / 100.0,
        band.entries.len(),
        band.leaf_accesses
    );

    // Duplicates are first-class: the same price usually occurs many times.
    let modal_price = band.entries.first().map(|e| e.0).unwrap_or(last);
    println!(
        "price {:.2} occurred {} times",
        modal_price as f64 / 100.0,
        by_price.get_all(modal_price).len()
    );
}

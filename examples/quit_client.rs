//! Command-line client for the `quit_server` example.
//!
//! ```sh
//! cargo run --release --example quit_client -- 127.0.0.1:7878 load 100000
//! cargo run --release --example quit_client -- 127.0.0.1:7878 get 42
//! cargo run --release --example quit_client -- 127.0.0.1:7878 range 0 1000
//! cargo run --release --example quit_client -- 127.0.0.1:7878 stats
//! ```
//!
//! `load N` demonstrates what the service is for: it pipelines N
//! near-sorted single inserts without waiting for replies, letting the
//! server coalesce them into per-shard sorted runs — then prints the
//! server-side fast-path rate it earned.

use quick_insertion_tree::bods::BodsSpec;
use quick_insertion_tree::quit_service::{Client, Reply, Request, Result};

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, cmd) = match args.split_first() {
        Some((addr, rest)) if !rest.is_empty() => (addr.clone(), rest.to_vec()),
        _ => {
            eprintln!(
                "usage: quit_client ADDR <get K | insert K V | delete K | \
                 range LO HI [LIMIT] | load N | stats>"
            );
            return Ok(());
        }
    };

    let mut client = Client::connect(&addr)?;
    let int = |s: &String| s.parse::<u64>().expect("arguments must be u64");

    match cmd[0].as_str() {
        "get" => println!("{:?}", client.get(int(&cmd[1]))?),
        "insert" => {
            client.insert(int(&cmd[1]), int(&cmd[2]))?;
            println!("ok");
        }
        "delete" => println!("{:?}", client.delete(int(&cmd[1]))?),
        "range" => {
            let limit = cmd.get(3).map(&int).unwrap_or(10);
            let entries = client.range(int(&cmd[1]), int(&cmd[2]), limit as u32)?;
            for (k, v) in &entries {
                println!("{k} => {v}");
            }
            println!("({} entries)", entries.len());
        }
        "load" => {
            let n = int(&cmd[1]) as usize;
            // A 3%-disordered stream spread across the shard keyspace.
            let keys = BodsSpec::new(n, 0.03, 1.0).with_seed(42).generate();
            let scale = u64::MAX / n.max(1) as u64;
            let t0 = std::time::Instant::now();
            for (seq, &k) in keys.iter().enumerate() {
                client.send(&Request::Insert {
                    key: k.wrapping_mul(scale),
                    value: seq as u64,
                })?;
            }
            client.flush()?;
            while client.pending() > 0 {
                let (_, reply) = client.recv()?;
                assert_eq!(reply?, Reply::Inserted);
            }
            let dt = t0.elapsed();
            let stats = client.stats()?;
            println!(
                "loaded {n} keys in {dt:?} ({:.0} inserts/s), server fast-path rate {:.1}%",
                n as f64 / dt.as_secs_f64(),
                stats.fastpath_rate() * 100.0
            );
        }
        "stats" => {
            let s = client.stats()?;
            println!(
                "len={} shards={} fast={} top={} wal_appends={} wal_fsyncs={} fast-path {:.1}%",
                s.len,
                s.shards,
                s.fast_inserts,
                s.top_inserts,
                s.wal_appends,
                s.wal_fsyncs,
                s.fastpath_rate() * 100.0
            );
        }
        other => eprintln!("unknown command {other}"),
    }
    Ok(())
}

//! # quick-insertion-tree — workspace façade
//!
//! Re-exports the reproduction's crates under one roof so the examples and
//! cross-crate integration tests have a single dependency:
//!
//! * [`quit_core`] — the Quick Insertion Tree and its B+-tree platform
//!   (classical / tail / ℓiℓ / poℓe variants, Table 1 metadata, IKR).
//! * [`quit_concurrent`] — the lock-crabbing concurrent tree (§4.5).
//! * [`quit_durability`] — segmented WAL with group commit, sorted
//!   snapshots, and crash recovery for any `SortedIndex`.
//! * [`sware`] — the SWARE SA-B+-tree baseline.
//! * [`bods`] — K–L-sortedness workload generation and measurement.
//! * [`quit_testkit`] — the differential fuzzing & shrinking oracle
//!   (workload generation + model replay across all families, plus the
//!   crash-recovery differential mode).

#![warn(missing_docs)]

pub use bods;
pub use quit_concurrent;
pub use quit_core;
pub use quit_durability;
pub use quit_testkit;
pub use sware;

//! # quick-insertion-tree — workspace façade
//!
//! Re-exports the reproduction's crates under one roof so the examples and
//! cross-crate integration tests have a single dependency:
//!
//! * [`quit_core`] — the Quick Insertion Tree and its B+-tree platform
//!   (classical / tail / ℓiℓ / poℓe variants, Table 1 metadata, IKR).
//! * [`quit_concurrent`] — the lock-crabbing concurrent tree (§4.5).
//! * [`quit_durability`] — segmented WAL with group commit, sorted
//!   snapshots, and crash recovery for any `SortedIndex`.
//! * [`quit_service`] — the sharded, pipelined TCP key-value service
//!   over `Durable<ConcurrentTree>`.
//! * [`sware`] — the SWARE SA-B+-tree baseline.
//! * [`bods`] — K–L-sortedness workload generation and measurement.
//! * [`quit_testkit`] — the differential fuzzing & shrinking oracle
//!   (workload generation + model replay across all families, plus the
//!   crash-recovery differential mode).
//!
//! All fallible façade APIs return [`Result`] with the unified
//! [`Error`] taxonomy from `quit_core` — the only error type this crate
//! exports.
//!
//! ## The [`Quit`] handle
//!
//! For embedding without picking crates apart, [`Quit`] bundles the
//! common deployment — a durable concurrent tree on a directory — behind
//! one `open()`:
//!
//! ```
//! use quick_insertion_tree::Quit;
//!
//! let dir = std::env::temp_dir().join(format!("quit-doc-{}", std::process::id()));
//! let db = Quit::open(&dir)?;
//! db.insert(7, 700);
//! assert_eq!(db.get(7), Some(700));
//! assert_eq!(db.delete(7), Some(700));
//! # drop(db);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), quick_insertion_tree::Error>(())
//! ```

#![warn(missing_docs)]

pub use bods;
pub use quit_concurrent;
pub use quit_core;
pub use quit_durability;
pub use quit_service;
pub use quit_testkit;
pub use sware;

pub use quit_core::{Error, Result};
pub use quit_core::{NodeLayoutKind, SearchKind};

use quit_concurrent::{ConcConfig, ConcRangeIter, ConcurrentTree};
use quit_core::{SortedIndex, StatsSnapshot};
use quit_durability::{
    concurrent_builder, DurabilityConfig, Durable, FsStorage, MemStorage, RecoveryReport, Storage,
};
use std::ops::RangeBounds;
use std::path::Path;
use std::sync::Arc;

/// The batteries-included handle: a [`Durable`]`<`[`ConcurrentTree`]`>`
/// over `u64` keys and values, opened on a directory with paper-default
/// tree geometry and group-commit durability.
///
/// Reads and logged point writes go through `&self` (share a `Quit`
/// across threads with an [`Arc`]); batch ingest and maintenance
/// (checkpoint) take `&mut self`. For other key/value types, tree
/// configs, or storage backends, drop down to [`Durable::open`] — this
/// handle is the common case, not the whole API. For serving over TCP,
/// see [`quit_service::Server`].
pub struct Quit {
    inner: Durable<ConcurrentTree<u64, u64>>,
}

impl Quit {
    /// Opens (or creates) a durable tree in `dir` with paper-default
    /// geometry and group-commit durability, discarding the recovery
    /// report. See [`open_with`](Self::open_with) to keep it.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let (db, _) = Self::open_with(
            dir,
            ConcConfig::paper_default(),
            DurabilityConfig::group_commit(),
        )?;
        Ok(db)
    }

    /// Opens (or creates) a durable tree in `dir` with explicit tree and
    /// durability configuration, returning the [`RecoveryReport`]
    /// describing what was replayed.
    pub fn open_with(
        dir: impl AsRef<Path>,
        tree: ConcConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let storage = Arc::new(FsStorage::open(dir.as_ref())?) as Arc<dyn Storage>;
        let (inner, report) = Durable::open(storage, durability, concurrent_builder(tree))?;
        Ok((Quit { inner }, report))
    }

    /// An in-memory handle (WAL records go to a heap buffer; nothing
    /// survives the process) — tests and scratch work.
    pub fn in_memory() -> Self {
        let storage = Arc::new(MemStorage::new()) as Arc<dyn Storage>;
        let (inner, _) = Durable::open(
            storage,
            DurabilityConfig::group_commit(),
            concurrent_builder(ConcConfig::paper_default()),
        )
        .expect("in-memory open cannot fail");
        Quit { inner }
    }

    /// Logged insert; at group-commit durability, returns once the record
    /// is fsync-durable.
    pub fn insert(&self, key: u64, value: u64) {
        self.inner.insert_shared(key, value);
    }

    /// Logged batch insert — one WAL append and one group commit for the
    /// whole batch; sorted batches ride the tree's sorted-run fast path.
    /// Returns how many entries were new keys.
    pub fn insert_batch(&mut self, entries: &[(u64, u64)]) -> usize {
        self.inner.insert_batch(entries)
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.inner.tree().get(key)
    }

    /// Logged delete, returning the previous value if the key was
    /// present.
    pub fn delete(&self, key: u64) -> Option<u64> {
        self.inner.delete_shared(key)
    }

    /// Ordered iteration over `bounds`.
    pub fn range(&self, bounds: impl RangeBounds<u64>) -> ConcRangeIter<u64, u64> {
        self.inner.tree().range(bounds)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.tree().len()
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree + WAL metrics (fast-path counters, WAL appends/fsyncs,
    /// group-commit and recovery histograms).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.metrics()
    }

    /// Writes a sorted snapshot and rotates the WAL, so the next open
    /// recovers from `bulk_load + tiny tail` instead of a long replay.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.inner.checkpoint()
    }

    /// Blocks until everything logged so far is fsync-durable (the
    /// explicit durability point for `Buffered`-level configs).
    pub fn commit_all(&self) -> Result<()> {
        self.inner.commit_all()
    }

    /// The underlying [`Durable`] wrapper, for APIs the handle doesn't
    /// surface (WAL watermarks, invariant checks, `into_inner`).
    pub fn durable(&mut self) -> &mut Durable<ConcurrentTree<u64, u64>> {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip_in_memory() {
        let mut db = Quit::in_memory();
        db.insert(1, 10);
        db.insert_batch(&[(2, 20), (3, 30)]);
        assert_eq!(db.get(2), Some(20));
        assert_eq!(db.len(), 3);
        assert_eq!(db.delete(1), Some(10));
        let all: Vec<(u64, u64)> = db.range(..).collect();
        assert_eq!(all, vec![(2, 20), (3, 30)]);
        assert!(!db.is_empty());
        assert!(db.stats().wal_appends >= 4);
        db.commit_all().unwrap();
    }

    #[test]
    fn handle_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "quit-facade-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut db = Quit::open(&dir).unwrap();
            db.insert_batch(&(0..500u64).map(|k| (k, k * 2)).collect::<Vec<_>>());
            db.delete(3);
            db.checkpoint().unwrap();
            db.insert(1000, 1);
        }
        let (db, report) = Quit::open_with(
            &dir,
            ConcConfig::paper_default(),
            DurabilityConfig::group_commit(),
        )
        .unwrap();
        assert_eq!(report.snapshot_entries, 499);
        assert_eq!(report.tail_records, 1);
        assert_eq!(db.len(), 500);
        assert_eq!(db.get(3), None);
        assert_eq!(db.get(1000), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

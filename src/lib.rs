//! # quick-insertion-tree — workspace façade
//!
//! Re-exports the reproduction's crates under one roof so the examples and
//! cross-crate integration tests have a single dependency:
//!
//! * [`quit_core`] — the Quick Insertion Tree and its B+-tree platform
//!   (classical / tail / ℓiℓ / poℓe variants, Table 1 metadata, IKR).
//! * [`quit_concurrent`] — the lock-crabbing concurrent tree (§4.5) and
//!   the multi-version [`MvccTree`](quit_concurrent::MvccTree) over it.
//! * [`quit_durability`] — segmented WAL with group commit, sorted
//!   snapshots, and crash recovery for any `SortedIndex`; since 0.9.0
//!   also [`quit_durability::TxnStore`], snapshot-isolation
//!   transactions with atomic commit-group recovery.
//! * [`quit_service`] — the sharded, pipelined TCP key-value service
//!   over `Durable<ConcurrentTree>`.
//! * [`sware`] — the SWARE SA-B+-tree baseline.
//! * [`bods`] — K–L-sortedness workload generation and measurement.
//! * [`quit_testkit`] — the differential fuzzing & shrinking oracle
//!   (workload generation + model replay across all families, the
//!   crash-recovery differential mode, and the SI history checker).
//!
//! All fallible façade APIs return [`Result`] with the unified
//! [`Error`] taxonomy from `quit_core` — the only error type this crate
//! exports.
//!
//! ## The [`Quit`] handle
//!
//! For embedding without picking crates apart, [`Quit`] bundles the
//! common deployment — a durable, transactional concurrent tree on a
//! directory — behind one `open()`:
//!
//! ```
//! use quick_insertion_tree::Quit;
//!
//! let dir = std::env::temp_dir().join(format!("quit-doc-{}", std::process::id()));
//! let db = Quit::open(&dir)?;
//! db.insert(7, 700);
//! assert_eq!(db.get(7), Some(700));
//! assert_eq!(db.delete(7), Some(700));
//!
//! // Multi-key snapshot-isolation transactions (0.9.0):
//! let mut txn = db.begin_txn();
//! txn.insert(1, 10);
//! txn.insert(2, 20);
//! txn.commit()?;
//! assert_eq!(db.get(1), Some(10));
//! # drop(db);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), quick_insertion_tree::Error>(())
//! ```

#![warn(missing_docs)]

pub use bods;
pub use quit_concurrent;
pub use quit_core;
pub use quit_durability;
pub use quit_service;
pub use quit_testkit;
pub use sware;

pub use quit_core::{Error, Result};
pub use quit_core::{NodeLayoutKind, SearchKind};

use quit_concurrent::ConcConfig;
use quit_core::{BpTree, FastPathMode, SortedIndex, StatsSnapshot, StorageKind, TreeConfig};
use quit_durability::{
    DurabilityConfig, Durable, FsStorage, MemStorage, RecoveryReport, Storage, Txn, TxnConfig,
    TxnStats, TxnStore,
};
use std::ops::RangeBounds;
use std::path::Path;
use std::sync::Arc;

/// The batteries-included handle: a [`TxnStore`] over `u64` keys and
/// values, opened on a directory with paper-default tree geometry and
/// group-commit durability.
///
/// Every mutation is a transaction: the single-op methods
/// ([`insert`](Self::insert), [`delete`](Self::delete)) auto-commit, and
/// [`begin_txn`](Self::begin_txn) opens a multi-key snapshot-isolation
/// transaction. Everything goes through `&self` — share a `Quit` across
/// threads with an [`Arc`]. For other key/value types, tree configs, or
/// storage backends, drop down to [`TxnStore::open`] (or the
/// non-transactional [`quit_durability::Durable`]); this handle is the
/// common case, not the whole API. For serving over TCP, see
/// [`quit_service::Server`].
pub struct Quit {
    inner: TxnStore<u64, u64>,
}

impl Quit {
    /// Opens (or creates) a durable transactional tree in `dir` with
    /// paper-default geometry and group-commit durability, discarding the
    /// recovery report. See [`open_with`](Self::open_with) to keep it.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let (db, _) = Self::open_with(
            dir,
            ConcConfig::paper_default(),
            DurabilityConfig::group_commit(),
        )?;
        Ok(db)
    }

    /// Opens (or creates) a durable transactional tree in `dir` with
    /// explicit tree and durability configuration, returning the
    /// [`RecoveryReport`] describing what was replayed. Directories
    /// written by pre-0.9 (non-transactional) versions upgrade in place:
    /// their plain WAL records replay as single-op commits.
    pub fn open_with(
        dir: impl AsRef<Path>,
        tree: ConcConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let storage = Arc::new(FsStorage::open(dir.as_ref())?) as Arc<dyn Storage>;
        let config = TxnConfig::default()
            .with_tree(tree)
            .with_durability(durability);
        let (inner, report) = TxnStore::open(storage, config)?;
        Ok((Quit { inner }, report))
    }

    /// An in-memory handle (WAL records go to a heap buffer; nothing
    /// survives the process) — tests and scratch work.
    pub fn in_memory() -> Self {
        let storage = Arc::new(MemStorage::new()) as Arc<dyn Storage>;
        let (inner, _) =
            TxnStore::open(storage, TxnConfig::default()).expect("in-memory open cannot fail");
        Quit { inner }
    }

    /// Begins a multi-key snapshot-isolation transaction: reads resolve
    /// against a stable snapshot, writes buffer until
    /// [`commit`](Txn::commit), and first-committer-wins validation
    /// rejects lost updates with [`Error::Conflict`].
    pub fn begin_txn(&self) -> Txn<'_, u64, u64> {
        self.inner.begin()
    }

    /// Auto-commit single-key insert (retried internally on conflict);
    /// at group-commit durability, returns once the commit group is
    /// fsync-durable. Panics if the WAL can no longer accept writes
    /// (poisoned after an I/O failure).
    pub fn insert(&self, key: u64, value: u64) {
        self.inner.insert(key, value).expect("WAL append failed");
    }

    /// Batch insert as one transaction — one WAL commit group and one
    /// group commit for the whole batch. Returns how many entries were
    /// new keys.
    pub fn insert_batch(&self, entries: &[(u64, u64)]) -> usize {
        let before = self.inner.len();
        loop {
            let mut txn = self.inner.begin();
            for &(k, v) in entries {
                txn.insert(k, v);
            }
            match txn.commit() {
                Err(Error::Conflict(_)) => continue,
                Err(e) => panic!("WAL append failed: {e}"),
                Ok(_) => break,
            }
        }
        self.inner.len() - before
    }

    /// Point lookup at the current visible snapshot.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.inner.get(key)
    }

    /// Auto-commit single-key delete, returning the previous value if
    /// the key was live.
    pub fn delete(&self, key: u64) -> Option<u64> {
        self.inner.delete(key).expect("WAL append failed")
    }

    /// Ordered iteration over `bounds` — a materialized snapshot scan,
    /// so the whole result observes one consistent point in time.
    pub fn range(&self, bounds: impl RangeBounds<u64>) -> impl Iterator<Item = (u64, u64)> {
        self.inner.scan(bounds).into_iter()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree + WAL metrics (fast-path counters, WAL appends/fsyncs,
    /// group-commit and recovery histograms).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.metrics()
    }

    /// Transaction counters: commits, conflicts, aborts, GC activity.
    pub fn txn_stats(&self) -> TxnStats {
        self.inner.txn_stats()
    }

    /// Runs a version-GC pass now (one also runs automatically every
    /// `TxnConfig::gc_every` commits). Returns versions reclaimed.
    pub fn gc(&self) -> usize {
        self.inner.gc()
    }

    /// Writes a sorted snapshot and rotates the WAL, so the next open
    /// recovers from `bulk_load + tiny tail` instead of a long replay.
    /// Quiesces concurrent committers for the duration.
    pub fn checkpoint(&self) -> Result<()> {
        self.inner.checkpoint()
    }

    /// Blocks until everything logged so far is fsync-durable (the
    /// explicit durability point for `Buffered`-level configs).
    pub fn commit_all(&self) -> Result<()> {
        self.inner.commit_all()
    }

    /// The underlying [`TxnStore`], for APIs the handle doesn't surface
    /// (snapshot scans at explicit timestamps, consistency checks,
    /// configuration).
    pub fn store(&self) -> &TxnStore<u64, u64> {
        &self.inner
    }

    /// Opens (or creates) a durable **paged** tree in `dir`: nodes live in
    /// fixed-size pages behind a buffer pool capped at `pool_pages`
    /// resident pages, checkpoints publish the page file itself
    /// (`psnap-….qpsf`), and recovery is partly lazy — integrity is
    /// verified eagerly but nodes fault in on first use, so datasets
    /// larger than the pool (and RAM) stay usable.
    ///
    /// The trade is concurrency: the paged backend is single-writer, so
    /// this returns a [`QuitPaged`] handle (`&mut self` mutations, no
    /// transactions) instead of a [`Quit`]. Directories written by the
    /// non-paged [`Quit::open`] are **not** interchangeable with paged
    /// ones — pick one flavour per directory.
    pub fn open_paged(
        dir: impl AsRef<Path>,
        pool_pages: usize,
    ) -> Result<(QuitPaged, RecoveryReport)> {
        QuitPaged::open(dir, pool_pages)
    }
}

/// The paged sibling of [`Quit`]: a durable single-writer [`BpTree`] whose
/// nodes live in 4 KiB pages behind a buffer pool ([`Quit::open_paged`]).
///
/// Mutations take `&mut self` — wrap in a `Mutex` to share across threads.
/// Reads (`get`, `range`) also take `&mut self`, because even a lookup may
/// fault pages in. Geometry is fixed at a page-friendly leaf capacity
/// rather than the paper's 510-entry nodes (which assume the in-memory
/// arena); for the bit-for-bit paper configuration use [`Quit::open`] or
/// `quit_core` directly.
pub struct QuitPaged {
    inner: Durable<BpTree<u64, u64>>,
}

/// Leaf/internal capacity for the facade's paged trees: 120 entries of
/// `(u64, u64)` plus node metadata fits comfortably in one 4 KiB page.
const PAGED_LEAF_CAPACITY: usize = 120;

impl QuitPaged {
    /// See [`Quit::open_paged`].
    pub fn open(dir: impl AsRef<Path>, pool_pages: usize) -> Result<(Self, RecoveryReport)> {
        let storage = Arc::new(FsStorage::open(dir.as_ref())?) as Arc<dyn Storage>;
        let tree_config =
            TreeConfig::small(PAGED_LEAF_CAPACITY).with_storage(StorageKind::paged(pool_pages));
        let (inner, report) = Durable::open_paged(
            storage,
            DurabilityConfig::group_commit(),
            FastPathMode::Pole,
            tree_config,
        )?;
        Ok((QuitPaged { inner }, report))
    }

    /// Logged insert; at group-commit durability, returns once the commit
    /// group is fsync-durable.
    pub fn insert(&mut self, key: u64, value: u64) {
        SortedIndex::insert(&mut self.inner, key, value);
    }

    /// Batch insert — one WAL append (and one group commit) for the whole
    /// batch. Returns how many entries were new keys.
    pub fn insert_batch(&mut self, entries: &[(u64, u64)]) -> usize {
        SortedIndex::insert_batch(&mut self.inner, entries)
    }

    /// Point lookup (may fault the key's page into the pool).
    pub fn get(&mut self, key: u64) -> Option<u64> {
        SortedIndex::get(&mut self.inner, key)
    }

    /// Logged delete, returning the previous value if the key was live.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        SortedIndex::delete(&mut self.inner, key)
    }

    /// Ordered iteration over `bounds`, faulting pages as the scan walks.
    pub fn range(
        &mut self,
        bounds: impl RangeBounds<u64>,
    ) -> impl Iterator<Item = (u64, u64)> + '_ {
        SortedIndex::range(&mut self.inner, bounds)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        SortedIndex::len(&self.inner)
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nodes currently resident in the buffer pool (decoded and pinned or
    /// cached) — bounded by the pool budget between operations.
    pub fn resident_nodes(&self) -> usize {
        self.inner.inner().resident_nodes()
    }

    /// Tree + pool + WAL metrics; the pool counters (`page_faults`,
    /// `page_evictions`, `pool_hits`, `pool_hit_rate`) are live here.
    pub fn stats(&self) -> StatsSnapshot {
        SortedIndex::metrics(&self.inner)
    }

    /// Flushes every dirty page, publishes the page file as a paged
    /// snapshot (`psnap-….qpsf`), rotates the WAL, and prunes superseded
    /// files, so the next open recovers lazily from the page image plus a
    /// tiny tail.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.inner.checkpoint_paged()
    }

    /// Blocks until everything logged so far is fsync-durable.
    pub fn commit_all(&mut self) -> Result<()> {
        self.inner.commit_all()
    }

    /// The underlying durable tree, for APIs the handle doesn't surface.
    pub fn store(&mut self) -> &mut Durable<BpTree<u64, u64>> {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip_in_memory() {
        let db = Quit::in_memory();
        db.insert(1, 10);
        db.insert_batch(&[(2, 20), (3, 30)]);
        assert_eq!(db.get(2), Some(20));
        assert_eq!(db.len(), 3);
        assert_eq!(db.delete(1), Some(10));
        let all: Vec<(u64, u64)> = db.range(..).collect();
        assert_eq!(all, vec![(2, 20), (3, 30)]);
        assert!(!db.is_empty());
        assert!(db.stats().wal_appends >= 4);
        assert_eq!(db.txn_stats().commits, 3);
        db.commit_all().unwrap();
    }

    #[test]
    fn handle_transactions_conflict_and_isolate() {
        let db = Quit::in_memory();
        db.insert(1, 10);
        let reader = db.begin_txn();
        let mut a = db.begin_txn();
        let mut b = db.begin_txn();
        a.insert(1, 11);
        b.insert(1, 12);
        a.commit().unwrap();
        assert!(matches!(b.commit(), Err(Error::Conflict(_))));
        // The reader's snapshot predates both.
        assert_eq!(reader.get(1), Some(10));
        drop(reader);
        assert_eq!(db.get(1), Some(11));
        assert_eq!(db.txn_stats().conflicts, 1);
    }

    #[test]
    fn handle_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "quit-facade-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Quit::open(&dir).unwrap();
            db.insert_batch(&(0..500u64).map(|k| (k, k * 2)).collect::<Vec<_>>());
            db.delete(3);
            db.checkpoint().unwrap();
            db.insert(1000, 1);
        }
        let (db, report) = Quit::open_with(
            &dir,
            ConcConfig::paper_default(),
            DurabilityConfig::group_commit(),
        )
        .unwrap();
        assert_eq!(report.snapshot_entries, 499);
        assert_eq!(report.tail_records, 1);
        assert_eq!(db.len(), 500);
        assert_eq!(db.get(3), None);
        assert_eq!(db.get(1000), Some(1));
        // An uncommitted transaction at crash time must leave no trace.
        let mut orphan = db.begin_txn();
        orphan.insert(2000, 2);
        drop(orphan);
        drop(db);
        let (db, _) = Quit::open_with(
            &dir,
            ConcConfig::paper_default(),
            DurabilityConfig::group_commit(),
        )
        .unwrap();
        assert_eq!(db.get(2000), None);
        assert_eq!(db.len(), 500);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paged_handle_survives_reopen_lazily() {
        let dir = std::env::temp_dir().join(format!(
            "quit-paged-facade-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut db, _) = Quit::open_paged(&dir, 64).unwrap();
            db.insert_batch(&(0..5000u64).map(|k| (k, k * 2)).collect::<Vec<_>>());
            db.delete(3);
            db.checkpoint().unwrap();
            db.insert(10_000, 1);
        }
        let (mut db, report) = Quit::open_paged(&dir, 64).unwrap();
        assert_eq!(report.snapshot_entries, 4999);
        assert_eq!(report.tail_records, 1);
        // Lazy recovery: far fewer nodes resident than the tree holds.
        assert!(
            db.resident_nodes() <= 64,
            "resident {} after open",
            db.resident_nodes()
        );
        assert_eq!(db.get(3), None);
        assert_eq!(db.get(10_000), Some(1));
        assert_eq!(db.len(), 5000);
        let spot: Vec<(u64, u64)> = db.range(100..104).collect();
        assert_eq!(spot, vec![(100, 200), (101, 202), (102, 204), (103, 206)]);
        let stats = db.stats();
        assert!(stats.page_faults > 0, "reads faulted pages in");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn txn_store_rejects_paged_conc_config() {
        let dir = std::env::temp_dir().join(format!(
            "quit-paged-reject-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let tree =
            ConcConfig::paper_default().with_storage(quit_concurrent::StorageKind::paged(64));
        let err = match Quit::open_with(&dir, tree, DurabilityConfig::group_commit()) {
            Err(err) => err,
            Ok(_) => panic!("paged ConcConfig must be rejected"),
        };
        assert_eq!(err.kind(), "config");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

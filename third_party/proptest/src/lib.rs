//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment cannot download crates, so the workspace vendors a
//! small API-compatible property-testing harness: deterministic random input
//! generation through the [`strategy::Strategy`] trait, the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`], and [`prop_assert_eq!`] macros, integer
//! range / tuple / `vec` / `any::<T>()` strategies, and a per-test case count
//! via `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case panics with the generated inputs instead
//!   of a minimized counterexample;
//! - no persistence — `*.proptest-regressions` files are not read or
//!   written (failures reproduce via the fixed per-test seed).

pub mod test_runner {
    //! Test configuration and the deterministic generator behind it.

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 source used to generate test inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (e.g. the test name), so
        /// each property sees a distinct but reproducible input sequence.
        pub fn from_label(label: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state }
        }

        /// Next raw random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Input-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// just samples a value from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted choice between boxed strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples an unconstrained value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`], converted from `usize` ranges.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: r.end().checked_add(1).expect("size range overflow"),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares property tests: each `fn` runs `config.cases` times over inputs
/// drawn from the strategies after `in`. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_label(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let ($($pat,)+) = {
                    #[allow(unused_imports)]
                    use $crate::strategy::Strategy as _;
                    ($( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+)
                };
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Asserts inside a property (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec(...)` works as in real
    /// proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 10..20u64, y in 0usize..=5, z in any::<u64>()) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
            let _ = z;
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0..100u64, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_map(pair in (0..5u64, 0..5u64).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(pair.1 >= pair.0);
        }

        #[test]
        fn oneof_weights(pick in prop_oneof![3 => 0..1u64, 1 => 10..11u64]) {
            prop_assert!(pick == 0 || pick == 10);
        }
    }

    #[test]
    fn deterministic_reruns() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0..1000u64, 5..50);
        let mut a = crate::test_runner::TestRng::from_label("x");
        let mut b = crate::test_runner::TestRng::from_label("x");
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}

//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment cannot download crates, so the workspace vendors a
//! small API-compatible property-testing harness: deterministic random input
//! generation through the [`strategy::Strategy`] trait, the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`], and [`prop_assert_eq!`] macros, integer
//! range / tuple / [`collection::vec`] / `any::<T>()` strategies, and a
//! per-test case count via `ProptestConfig::with_cases`.
//!
//! Unlike the original generate-only stub, this version is a real engine:
//!
//! - **Shrinking.** Failing cases are minimized by greedy delta debugging:
//!   [`strategy::Strategy::shrink`] proposes one round of strictly simpler
//!   candidate values (chunk removal then per-element minimization for
//!   `Vec`s, bisection toward the range start for integers, component-wise
//!   substitution for tuples), and the runner repeatedly adopts the first
//!   candidate that still fails until it reaches a local minimum or exhausts
//!   [`test_runner::Config::max_shrink_iters`].
//! - **Persistence.** Each case is generated from its own `u64` seed. When a
//!   case fails, its seed is appended to a `<source>.proptest-regressions`
//!   file next to the test source (`cc <hex-seed>` lines, mirroring upstream
//!   proptest's file format); persisted seeds are replayed before any fresh
//!   cases on subsequent runs, so a fixed bug stays fixed.
//!
//! Remaining differences from real proptest, by design:
//!
//! - `prop_map` cannot shrink: the mapping function is not invertible, so
//!   mapped strategies return no shrink candidates. Strategies that need
//!   high-quality shrinking (e.g. the workload generator in `quit-testkit`)
//!   implement [`strategy::Strategy`] directly instead.
//! - Shrinking replays the test body under `std::panic::catch_unwind`, so
//!   panic backtraces from intermediate candidates may appear in captured
//!   test output before the final minimized report.

pub mod test_runner {
    //! Test configuration, the deterministic generator, and the shrinking
    //! [`Runner`] with regression-file persistence.

    use crate::strategy::Strategy;
    use std::fmt::{Debug, Write as _};
    use std::path::{Path, PathBuf};

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Upper bound on shrink candidates tested after a failure.
        pub max_shrink_iters: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }

        /// Returns `self` with a different shrink-candidate budget.
        pub fn with_shrink_iters(mut self, max_shrink_iters: u32) -> Self {
            self.max_shrink_iters = max_shrink_iters;
            self
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            Config {
                cases,
                max_shrink_iters: 10_000,
            }
        }
    }

    /// Deterministic SplitMix64 source used to generate test inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (e.g. the test name), so
        /// each property sees a distinct but reproducible input sequence.
        pub fn from_label(label: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state }
        }

        /// Seeds the stream from a raw `u64`, as persisted in a
        /// `.proptest-regressions` file.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Everything known about one failing property case, after shrinking.
    #[derive(Clone, Debug)]
    pub struct Failure<V> {
        /// The case seed; regenerates the *original* (unshrunk) input.
        pub seed: u64,
        /// The input as originally generated from `seed`.
        pub original: V,
        /// The minimized counterexample shrinking arrived at.
        pub minimal: V,
        /// Failure message of the minimal case (panic payload or `Err`).
        pub message: String,
        /// How many shrink candidates were tested.
        pub shrink_iters: u32,
        /// True when `seed` was replayed from a persisted regressions file
        /// rather than freshly generated.
        pub replayed: bool,
        /// Regressions file the seed was recorded in, when persistence is
        /// active.
        pub persisted_to: Option<PathBuf>,
    }

    impl<V: Debug> Failure<V> {
        /// Renders a human-readable multi-line failure report.
        pub fn report(&self, test_name: &str) -> String {
            let mut out = String::new();
            let _ = writeln!(out, "proptest: test '{test_name}' failed");
            let _ = writeln!(out, "  message: {}", self.message);
            let _ = writeln!(
                out,
                "  seed: {:016x}{}",
                self.seed,
                if self.replayed {
                    " (replayed from regressions file)"
                } else {
                    ""
                }
            );
            if let Some(p) = &self.persisted_to {
                let _ = writeln!(out, "  persisted to: {}", p.display());
            }
            let _ = writeln!(
                out,
                "  minimal counterexample (after {} shrink iters): {:?}",
                self.shrink_iters, self.minimal
            );
            out
        }

        /// Panics with [`Failure::report`]; used by the [`crate::proptest!`]
        /// macro.
        pub fn panic_with_report(&self, test_name: &str) -> ! {
            panic!("{}", self.report(test_name));
        }
    }

    /// Extracts a printable message from a caught panic payload.
    pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        }
    }

    /// Drives a property: replays persisted regression seeds, generates
    /// fresh cases, and shrinks + persists the first failure.
    ///
    /// The [`crate::proptest!`] macro builds one of these per test; the
    /// differential testkit also uses it programmatically to inspect
    /// [`Failure`] values (e.g. the mutation smoke check asserting that an
    /// injected bug shrinks below a size bound).
    pub struct Runner {
        label: String,
        config: Config,
        regressions: Option<PathBuf>,
    }

    impl Runner {
        /// A runner with no regression-file persistence.
        pub fn new(label: impl Into<String>, config: Config) -> Self {
            Runner {
                label: label.into(),
                config,
                regressions: None,
            }
        }

        /// A runner persisting to `<source_file minus extension>.proptest-regressions`,
        /// resolving the `file!()`-relative path against the current
        /// directory and the `CARGO_MANIFEST_DIR` ancestry (cargo runs test
        /// binaries with the package root as cwd while `file!()` is
        /// workspace-root-relative).
        pub fn for_source(label: impl Into<String>, source_file: &str, config: Config) -> Self {
            Runner {
                label: label.into(),
                config,
                regressions: regressions_path_for(source_file),
            }
        }

        /// Overrides the regressions file location (e.g. a temp file in
        /// tests of the persistence machinery itself).
        pub fn with_regressions_file(mut self, path: impl Into<PathBuf>) -> Self {
            self.regressions = Some(path.into());
            self
        }

        /// The resolved regressions path, if persistence is active.
        pub fn regressions_path(&self) -> Option<&Path> {
            self.regressions.as_deref()
        }

        /// Runs the property. `test` returns `Err(message)` on failure (the
        /// macro adapts a panicking body through `catch_unwind`).
        ///
        /// Returns the number of cases executed, or the shrunk [`Failure`].
        pub fn run<S, F>(&self, strategy: &S, test: F) -> Result<u32, Failure<S::Value>>
        where
            S: Strategy,
            S::Value: Clone + Debug,
            F: Fn(&S::Value) -> Result<(), String>,
        {
            let mut executed = 0u32;
            // Replay persisted regression seeds before any fresh cases.
            if let Some(path) = &self.regressions {
                for seed in read_regression_seeds(path) {
                    let value = strategy.sample(&mut TestRng::from_seed(seed));
                    executed += 1;
                    if let Err(msg) = test(&value) {
                        return Err(self.fail(strategy, &test, seed, value, msg, true));
                    }
                }
            }
            let mut seeder = TestRng::from_label(&self.label);
            for _ in 0..self.config.cases {
                let seed = seeder.next_u64();
                let value = strategy.sample(&mut TestRng::from_seed(seed));
                executed += 1;
                if let Err(msg) = test(&value) {
                    return Err(self.fail(strategy, &test, seed, value, msg, false));
                }
            }
            Ok(executed)
        }

        fn fail<S, F>(
            &self,
            strategy: &S,
            test: &F,
            seed: u64,
            original: S::Value,
            message: String,
            replayed: bool,
        ) -> Failure<S::Value>
        where
            S: Strategy,
            S::Value: Clone + Debug,
            F: Fn(&S::Value) -> Result<(), String>,
        {
            let (minimal, message, shrink_iters) = shrink_greedy(
                strategy,
                original.clone(),
                message,
                test,
                self.config.max_shrink_iters,
            );
            let persisted_to = self.regressions.as_ref().and_then(|path| {
                persist_regression_seed(path, seed, &minimal)
                    .ok()
                    .map(|_| path.clone())
            });
            Failure {
                seed,
                original,
                minimal,
                message,
                shrink_iters,
                replayed,
                persisted_to,
            }
        }
    }

    /// Greedy delta-debugging loop: ask the strategy for one round of
    /// simpler candidates, adopt the first that still fails, repeat until a
    /// local minimum or the iteration budget is reached.
    fn shrink_greedy<S, F>(
        strategy: &S,
        mut current: S::Value,
        mut message: String,
        test: &F,
        budget: u32,
    ) -> (S::Value, String, u32)
    where
        S: Strategy,
        S::Value: Clone,
        F: Fn(&S::Value) -> Result<(), String>,
    {
        let mut iters = 0u32;
        'outer: while iters < budget {
            let candidates = strategy.shrink(&current);
            if candidates.is_empty() {
                break;
            }
            for candidate in candidates {
                if iters >= budget {
                    break 'outer;
                }
                iters += 1;
                if let Err(msg) = test(&candidate) {
                    current = candidate;
                    message = msg;
                    continue 'outer;
                }
            }
            break; // every candidate passed: local minimum
        }
        (current, message, iters)
    }

    /// Maps a `file!()` string to its `.proptest-regressions` sibling.
    ///
    /// Tries the path as-is (relative to cwd), then joined onto each
    /// ancestor of `CARGO_MANIFEST_DIR`; a candidate is accepted when the
    /// file exists or, for first-time writes, when its parent directory
    /// exists.
    fn regressions_path_for(source_file: &str) -> Option<PathBuf> {
        let source = Path::new(source_file);
        let mut candidates: Vec<PathBuf> = Vec::new();
        if source.is_absolute() {
            candidates.push(source.to_path_buf());
        } else {
            candidates.push(source.to_path_buf());
            if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
                let mut dir = Some(Path::new(&manifest_dir));
                while let Some(d) = dir {
                    candidates.push(d.join(source));
                    dir = d.parent();
                }
            }
        }
        let resolved = candidates.iter().find(|c| c.is_file()).or_else(|| {
            candidates
                .iter()
                .find(|c| c.parent().is_some_and(Path::is_dir))
        })?;
        Some(resolved.with_extension("proptest-regressions"))
    }

    /// Parses `cc <hex-seed>` lines; unknown lines are ignored.
    fn read_regression_seeds(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("cc ") {
                let tok = rest.split_whitespace().next().unwrap_or("");
                let tok = tok.strip_prefix("0x").unwrap_or(tok);
                if let Ok(seed) = u64::from_str_radix(tok, 16) {
                    if !seeds.contains(&seed) {
                        seeds.push(seed);
                    }
                }
            }
        }
        seeds
    }

    /// Appends a `cc` line for `seed` (unless already present), creating
    /// the file with an explanatory header on first write.
    fn persist_regression_seed<V: Debug>(
        path: &Path,
        seed: u64,
        minimal: &V,
    ) -> std::io::Result<()> {
        if read_regression_seeds(path).contains(&seed) {
            return Ok(());
        }
        let mut text = if path.is_file() {
            std::fs::read_to_string(path)?
        } else {
            String::from(
                "# Seeds for failure cases proptest has generated in the past.\n\
                 # They are automatically read and re-run before any novel cases\n\
                 # are generated. It is recommended to check this file in to\n\
                 # source control so that everyone who runs the test benefits\n\
                 # from these saved cases.\n",
            )
        };
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        let mut shrunk: String = format!("{minimal:?}").chars().take(240).collect();
        shrunk.retain(|c| c != '\n' && c != '\r');
        let _ = writeln!(text, "cc {seed:016x} # shrinks to {shrunk}");
        std::fs::write(path, text)
    }
}

pub mod strategy {
    //! Input-generation strategies with candidate-based shrinking.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree; a strategy samples a
    /// value from a [`TestRng`] and, for shrinking, proposes one round of
    /// strictly simpler candidates via [`Strategy::shrink`]. The runner
    /// greedily adopts the first candidate that still fails the property
    /// and asks again, so `shrink` implementations only need to make local
    /// progress (each candidate simpler than `value`), not enumerate the
    /// whole lattice.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes simpler candidate values, simplest first. Candidates
        /// must be strictly simpler than `value` under some well-founded
        /// order, or shrinking may not terminate before the iteration
        /// budget. The default proposes nothing (no shrinking).
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        /// Maps generated values through `f`.
        ///
        /// Mapped strategies cannot shrink: `f` is not invertible, so there
        /// is no way to turn a candidate of the output back into an input.
        /// Implement [`Strategy`] directly for types that need shrinking.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            (**self).shrink(value)
        }
    }

    /// Always produces a clone of one value (already minimal; no shrink).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
        // Inherits the empty default `shrink`: `f` is not invertible.
    }

    /// Weighted choice between boxed strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
        /// Delegates to every arm; arms guard their own domain (e.g. an
        /// integer range proposes nothing for a value outside the range).
        fn shrink(&self, value: &T) -> Vec<T> {
            self.arms
                .iter()
                .flat_map(|(_, s)| s.shrink(value))
                .collect()
        }
    }

    /// Candidate offsets strictly below `d`, simplest (0) first, then
    /// approaching `d` by halving the remaining distance — the integer
    /// analogue of delta debugging's bisection.
    pub(crate) fn offsets_toward_zero(d: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if d == 0 {
            return out;
        }
        out.push(0);
        let mut step = d / 2;
        while step > 0 {
            out.push(d - step);
            step /= 2;
        }
        out.dedup();
        out
    }

    macro_rules! int_range_strategy {
        ($(($t:ty, $u:ty)),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    if !self.contains(value) {
                        return Vec::new();
                    }
                    let d = value.wrapping_sub(self.start) as $u as u64;
                    offsets_toward_zero(d)
                        .into_iter()
                        .map(|o| self.start.wrapping_add(o as $t))
                        .collect()
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end.wrapping_sub(start) as $u as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    if !self.contains(value) {
                        return Vec::new();
                    }
                    let d = value.wrapping_sub(*self.start()) as $u as u64;
                    offsets_toward_zero(d)
                        .into_iter()
                        .map(|o| self.start().wrapping_add(o as $t))
                        .collect()
                }
            }
        )*};
    }
    int_range_strategy!(
        (u8, u8),
        (u16, u16),
        (u32, u32),
        (u64, u64),
        (usize, usize),
        (i8, u8),
        (i16, u16),
        (i32, u32),
        (i64, u64),
        (isize, usize)
    );

    macro_rules! tuple_strategy {
        ($(($(($s:ident, $idx:tt)),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone,)+
            {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
                /// Shrinks one component at a time, keeping the rest fixed.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = candidate;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }
    tuple_strategy!(((A, 0))((A, 0), (B, 1))((A, 0), (B, 1), (C, 2))(
        (A, 0),
        (B, 1),
        (C, 2),
        (D, 3)
    )((A, 0), (B, 1), (C, 2), (D, 3), (E, 4)));
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::{offsets_toward_zero, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples an unconstrained value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;

        /// Proposes simpler values (toward a canonical zero); defaults to
        /// no shrinking.
        fn arbitrary_shrink(value: &Self) -> Vec<Self> {
            let _ = value;
            Vec::new()
        }
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn arbitrary_shrink(value: &Self) -> Vec<Self> {
                    offsets_toward_zero(*value as u64)
                        .into_iter()
                        .map(|o| o as $t)
                        .collect()
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize);

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                /// Shrinks magnitude toward 0, preserving sign.
                fn arbitrary_shrink(value: &Self) -> Vec<Self> {
                    let magnitude = value.unsigned_abs() as u64;
                    offsets_toward_zero(magnitude)
                        .into_iter()
                        .map(|o| if *value < 0 { -(o as $t) } else { o as $t })
                        .collect()
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn arbitrary_shrink(value: &Self) -> Vec<Self> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            T::arbitrary_shrink(value)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`], converted from `usize` ranges.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: r.end().checked_add(1).expect("size range overflow"),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }

        /// Delta debugging: aligned chunk removal (largest chunks first,
        /// down to single elements), then per-element minimization through
        /// the element strategy. The minimum length bound is respected.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let n = value.len();
            let min = self.size.min;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            // Most aggressive candidate first: the minimal-length prefix.
            if n > min {
                out.push(value[..min].to_vec());
            }
            let mut chunk = n / 2;
            while chunk >= 1 {
                let mut start = 0;
                while start < n {
                    let end = (start + chunk).min(n);
                    if end > start && n - (end - start) >= min {
                        let mut cand = Vec::with_capacity(n - (end - start));
                        cand.extend_from_slice(&value[..start]);
                        cand.extend_from_slice(&value[end..]);
                        out.push(cand);
                    }
                    start += chunk;
                }
                chunk /= 2;
            }
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Declares property tests: each `fn` runs `config.cases` times over inputs
/// drawn from the strategies after `in`, with shrinking and regression-file
/// persistence on failure. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let __strategy = ($( $strat, )+);
            let __runner = $crate::test_runner::Runner::for_source(
                concat!(module_path!(), "::", stringify!($name)),
                file!(),
                __config,
            );
            let __outcome = {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                __runner.run(&__strategy, |__value| {
                    let __caught = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let ($($pat,)+) = ::core::clone::Clone::clone(__value);
                            $body
                        }),
                    );
                    match __caught {
                        Ok(()) => Ok(()),
                        Err(payload) => Err($crate::test_runner::panic_message(payload)),
                    }
                })
            };
            if let Err(failure) = __outcome {
                failure.panic_with_report(stringify!($name));
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Asserts inside a property; the panic is caught by the runner, which
/// shrinks the failing input before reporting.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, Failure, Runner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec(...)` works as in real
    /// proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{Config, Runner, TestRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 10..20u64, y in 0usize..=5, z in any::<u64>()) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
            let _ = z;
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0..100u64, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_map(pair in (0..5u64, 0..5u64).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(pair.1 >= pair.0);
        }

        #[test]
        fn oneof_weights(pick in prop_oneof![3 => 0..1u64, 1 => 10..11u64]) {
            prop_assert!(pick == 0 || pick == 10);
        }
    }

    #[test]
    fn deterministic_reruns() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0..1000u64, 5..50);
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn seeded_rng_reproduces_cases() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0..1000u64, 5..50);
        let seed = 0x5eed_cafe_f00d_u64;
        let a = s.sample(&mut TestRng::from_seed(seed));
        let b = s.sample(&mut TestRng::from_seed(seed));
        assert_eq!(a, b);
    }

    /// A property failing for `x >= 37` must shrink to exactly 37.
    #[test]
    fn int_shrinks_to_boundary() {
        let runner = Runner::new("int_shrinks_to_boundary", Config::with_cases(64));
        let strategy = (0..1000u64,);
        let failure = runner
            .run(&strategy, |&(x,)| {
                if x >= 37 {
                    Err(format!("{x} >= 37"))
                } else {
                    Ok(())
                }
            })
            .expect_err("property must fail");
        assert_eq!(failure.minimal.0, 37, "report: {}", failure.report("t"));
    }

    /// Delta debugging drops irrelevant elements and minimizes the rest:
    /// a sum-threshold failure must shrink to a vector summing exactly to
    /// the threshold with no removable element.
    #[test]
    fn vec_shrinks_to_minimal_witness() {
        let runner = Runner::new("vec_shrinks_to_minimal_witness", Config::with_cases(64));
        let strategy = (crate::collection::vec(0..100u64, 0..20),);
        let failure = runner
            .run(&strategy, |(v,)| {
                if v.iter().sum::<u64>() >= 25 {
                    Err("sum over threshold".into())
                } else {
                    Ok(())
                }
            })
            .expect_err("property must fail");
        let minimal = &failure.minimal.0;
        assert_eq!(minimal.iter().sum::<u64>(), 25, "minimal: {minimal:?}");
        assert!(minimal.iter().all(|&x| x > 0), "minimal: {minimal:?}");
    }

    /// Tuple shrinking minimizes components jointly to the boundary.
    #[test]
    fn tuple_shrinks_componentwise() {
        let runner = Runner::new("tuple_shrinks_componentwise", Config::with_cases(64));
        let strategy = (0..100u64, 0..100u64);
        let failure = runner
            .run(&strategy, |&(a, b)| {
                if a + b >= 50 {
                    Err("over".into())
                } else {
                    Ok(())
                }
            })
            .expect_err("property must fail");
        let (a, b) = failure.minimal;
        assert_eq!(a + b, 50, "minimal: ({a}, {b})");
    }

    /// Failing seeds round-trip through the regressions file: the second
    /// run replays the persisted seed first and reproduces the same
    /// minimal counterexample.
    #[test]
    fn regressions_file_round_trips() {
        let path = std::env::temp_dir().join(format!(
            "proptest-stub-roundtrip-{}.proptest-regressions",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let strategy = (0..1000u64,);
        let test = |&(x,): &(u64,)| {
            if x >= 500 {
                Err("big".to_string())
            } else {
                Ok(())
            }
        };

        let first = Runner::new("round_trip", Config::with_cases(64))
            .with_regressions_file(&path)
            .run(&strategy, test)
            .expect_err("must fail");
        assert!(!first.replayed);
        assert_eq!(first.minimal.0, 500);
        assert_eq!(first.persisted_to.as_deref(), Some(path.as_path()));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(&format!("cc {:016x}", first.seed)), "{text}");

        // A different label would generate different fresh cases, but the
        // persisted seed is replayed before any of them.
        let second = Runner::new("round_trip_other_label", Config::with_cases(64))
            .with_regressions_file(&path)
            .run(&strategy, test)
            .expect_err("must fail again");
        assert!(second.replayed);
        assert_eq!(second.seed, first.seed);
        assert_eq!(second.minimal.0, first.minimal.0);
        let _ = std::fs::remove_file(&path);
    }

    /// Stale regression entries for now-passing properties are harmless:
    /// the run replays them, they pass, and fresh cases proceed.
    #[test]
    fn stale_regression_seed_passes() {
        let path = std::env::temp_dir().join(format!(
            "proptest-stub-stale-{}.proptest-regressions",
            std::process::id()
        ));
        std::fs::write(&path, "cc 00000000deadbeef # shrinks to 7\n").unwrap();
        let cases = Runner::new("stale_seed", Config::with_cases(8))
            .with_regressions_file(&path)
            .run(&(0..1000u64,), |_| Ok(()))
            .expect("passing property");
        assert_eq!(cases, 8 + 1, "replayed seed counts as an executed case");
        let _ = std::fs::remove_file(&path);
    }

    /// Union shrinking respects arm domains: a value can only shrink
    /// within the arm that could have produced it.
    #[test]
    fn union_shrink_guards_domains() {
        use crate::strategy::Strategy;
        let u = prop_oneof![1 => 0..5u64, 1 => 100..200u64];
        for cand in u.shrink(&150) {
            assert!((0..5).contains(&cand) || (100..200).contains(&cand));
        }
        // 100 is the minimum of its arm; the other arm offers 0..5.
        assert!(u.shrink(&100).iter().all(|&c| c < 5));
    }
}

//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors a tiny API-compatible implementation instead: a
//! SplitMix64 [`rngs::StdRng`], `gen_range` over integer/float ranges,
//! `gen_bool`, and Fisher–Yates [`seq::SliceRandom::shuffle`]. Determinism
//! per seed is all the tests and benchmarks rely on; the statistical quality
//! of SplitMix64 is more than adequate for workload generation.

/// A source of uniformly random `u64` words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A deterministically seedable generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a random word to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! Concrete generators.

    /// The workspace's standard test/bench generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod distributions {
    //! Sampling support traits.

    pub mod uniform {
        //! Uniform range sampling, mirroring `rand::distributions::uniform`.
        use crate::RngCore;

        /// A range that can produce a uniformly sampled value of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = self.end.wrapping_sub(self.start) as u64;
                        self.start.wrapping_add((rng.next_u64() % span) as $t)
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "cannot sample empty range");
                        let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                        if span == 0 {
                            // Full-width range: every word is a valid sample.
                            return rng.next_u64() as $t;
                        }
                        start.wrapping_add((rng.next_u64() % span) as $t)
                    }
                }
            )*};
        }
        int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                let v =
                    self.start + super::super::unit_f64(rng.next_u64()) * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers.
    use crate::RngCore;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rand::prelude`.
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1..=5usize);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-3..3i64);
            assert!((-3..3).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn unsized_rng_callable() {
        // Mirrors bods' `R: Rng + ?Sized` call sites.
        fn sample<R: crate::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}

//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build environment cannot download crates, so the workspace vendors a
//! minimal wall-clock harness with the same API shape: benchmark groups,
//! `bench_with_input` / `bench_function`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical sampling it runs a short calibration pass, then reports the
//! best-of-`sample_size` mean iteration time — adequate for the relative
//! comparisons the workspace's benches make, with no external dependencies.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }
}

/// Unit used to report per-iteration throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark (best is reported).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` with access to `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                per_iter: Duration::ZERO,
            };
            f(&mut b, input);
            best = best.min(b.per_iter);
        }
        self.report(&id.id, best);
        self
    }

    /// Times a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                per_iter: Duration::ZERO,
            };
            f(&mut b);
            best = best.min(b.per_iter);
        }
        self.report(&id.to_string(), best);
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}

    fn report(&self, id: &str, per_iter: Duration) {
        let ns = per_iter.as_nanos() as f64;
        match self.throughput {
            Some(Throughput::Elements(n)) if n > 0 && ns > 0.0 => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!(
                    "{}/{id}: {ns:.0} ns/iter ({:.2} Melem/s)",
                    self.name,
                    rate / 1e6
                );
            }
            Some(Throughput::Bytes(n)) if n > 0 && ns > 0.0 => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!(
                    "{}/{id}: {ns:.0} ns/iter ({:.2} MiB/s)",
                    self.name,
                    rate / (1024.0 * 1024.0)
                );
            }
            _ => println!("{}/{id}: {ns:.0} ns/iter", self.name),
        }
    }
}

/// Runs and times the benchmarked routine.
pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly and records the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: run once to estimate cost, then size the timed batch
        // so it lasts long enough for the clock to resolve it.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.per_iter = t1.elapsed() / iters;
    }
}

/// Bundles benchmark functions into a callable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            ran += 1;
        });
        group.bench_function("trivial", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(ran, 2);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
